"""E9 — Proposition 5.1: the ψ translation is PTIME and result-preserving.

Rows: regex size sweep over a parts catalogue — translation time, output
system size, propagation-rule count, and equality of [q](I) (native NFA
walking) with stripped [q'](I').  Shape: translation cost and output size
grow linearly with |NFA| × |document|; results match on every point.
"""

import time

import pytest

from paxml.analysis import strip_forest, translate
from paxml.query import evaluate_snapshot, parse_query
from paxml.system import AXMLSystem, materialize
from paxml.tree import label, val

from .harness import print_table


def catalogue(depth: int) -> AXMLSystem:
    """A parts tree of the given nesting depth, three parts per level."""

    def part(level: int, index: int):
        children = [label("name", val(f"p{level}-{index}"))]
        if level < depth:
            children += [part(level + 1, i) for i in range(2)]
        return label("part", *children)

    return AXMLSystem.build(documents={
        "cat": label("catalogue", part(0, 0), part(0, 1),
                     label("doc", label("name", val("manual")))),
    })


REGEXES = [
    "part.name",
    "part.part.name",
    "part+.name",
    "(part|doc)+.name",
    "part.(part|part)*.name",
]


@pytest.mark.parametrize("regex", REGEXES[:3])
def test_translation_cost(benchmark, regex):
    system = catalogue(4)
    query = parse_query(f"c{{$n}} :- cat/catalogue{{[{regex}]{{$n}}}}")
    benchmark.group = "E9 ψ translation"
    benchmark.name = regex
    benchmark(lambda: translate(system, query))


@pytest.mark.parametrize("regex", REGEXES[:3])
def test_native_regex_evaluation(benchmark, regex):
    system = catalogue(4)
    query = parse_query(f"c{{$n}} :- cat/catalogue{{[{regex}]{{$n}}}}")
    benchmark.group = "E9 native evaluation"
    benchmark.name = regex
    benchmark(lambda: evaluate_snapshot(query, system.environment()))


def test_e9_rows(benchmark):
    rows = []
    for regex in REGEXES:
        system = catalogue(3)
        query = parse_query(f"c{{$n}} :- cat/catalogue{{[{regex}]{{$n}}}}")
        native = evaluate_snapshot(query, system.environment())

        start = time.perf_counter()
        translated = translate(system, query)
        t_translate = time.perf_counter() - start
        rules = len(translated.system.services["axprop"].queries)

        outcome = materialize(translated.system, max_steps=200_000)
        via_psi = strip_forest(evaluate_snapshot(
            translated.query, translated.system.environment()))
        match = via_psi.equivalent_to(native)
        assert match, regex
        rows.append((regex, f"{t_translate * 1e3:.2f} ms", rules,
                     translated.system.total_size(), outcome.steps,
                     len(native), match))
    print_table("E9: ψ translation (Prop. 5.1)",
                ["regex", "translate", "rules", "|I'|", "materialise calls",
                 "answers", "[q](I)=[q'](I')"], rows)
    benchmark(lambda: None)
