"""E4 — Section 3.2 / Example 3.2: datalog is simulated by simple positive
systems.

Rows: for chain / cycle / random base relations, the transitive-closure
fixpoint computed by (a) the semi-naive datalog engine and (b) the paper's
AXML system, with agreement checked and costs compared.  Shape: both sides
derive the same facts; the AXML route pays a constant-factor tree-encoding
overhead but the same fixpoint rounds.
"""

import time

import pytest

from paxml.datalog import (
    compile_program,
    evaluate,
    facts_of_document,
    transitive_closure_program,
)
from paxml.system import materialize
from paxml.workloads import chain_edges, cycle_edges, random_edges, tc_system

from .harness import print_table

WORKLOADS = [
    ("chain-8", chain_edges(8)),
    ("chain-16", chain_edges(16)),
    ("cycle-8", cycle_edges(8)),
    ("random-10x14", random_edges(10, 14, seed=4)),
]


@pytest.mark.parametrize("name,edges", WORKLOADS[:2])
def test_axml_tc(benchmark, name, edges):
    benchmark.group = "E4 TC via AXML"
    benchmark.name = name

    def once():
        system = tc_system(edges)
        materialize(system)
        return system

    benchmark(once)


@pytest.mark.parametrize("name,edges", WORKLOADS[:2])
def test_datalog_tc(benchmark, name, edges):
    program = transitive_closure_program(edges)
    benchmark.group = "E4 TC via datalog"
    benchmark.name = name
    benchmark(lambda: evaluate(program))


def test_e4_rows(benchmark):
    rows = []
    for name, edges in WORKLOADS:
        program = transitive_closure_program(edges)
        start = time.perf_counter()
        reference = evaluate(program)
        t_datalog = time.perf_counter() - start

        system = compile_program(program)
        start = time.perf_counter()
        outcome = materialize(system)
        t_axml = time.perf_counter() - start

        derived = {f for f in facts_of_document(system) if f[0] == "tc"}
        agree = derived == {("tc", t) for t in reference.relation("tc")}
        assert agree, name
        rows.append((name, len(reference.relation("tc")),
                     f"{t_datalog * 1e3:.1f} ms",
                     f"{t_axml * 1e3:.1f} ms ({outcome.steps} calls)",
                     agree))
    print_table("E4: datalog vs simple positive system (Ex. 3.2)",
                ["relation", "|TC|", "datalog", "AXML", "agree"], rows)
    benchmark(lambda: None)
