"""PR 6 benchmark: columnar store + closure compilation vs the PR 4 engine.

Produces ``BENCH_pr6.json`` (repo root by default).  Both sides of every
comparison run with the full PR 4 machinery ON (planner, child index,
incremental matching, persistent caches); the knobs under test are
``perf.flags.columnar_store`` (struct-of-arrays mirror, packed marking
bitsets, the bitset antichain, head-key/head-bits templates) and
``perf.flags.closure_compile`` (plan lowering to specialized closures):

* ``e3_join_probe`` — per-site delta evaluation of the join2 query over
  a growing relation, the exact ``BENCH_pr4.json`` workload.
* ``e4_datalog_tc`` — TC(chain) materialization, ditto.

Both configurations are timed **in the same process, best of N runs,
on process CPU time** and the gate is the *ratio* between them.
Wall-clock on a shared container wanders by tens of percent between
runs — comparing a fresh absolute time against numbers recorded by a
past session would gate on machine load, not on the code, and even a
same-process wall-clock ratio inherits whatever contention hit one
side's runs.  CPU time measures the single-threaded compute both
configurations actually do.  The recorded PR 4 wall-clock absolutes
are still written into the report for cross-session reference.

Run::

    PYTHONPATH=src python benchmarks/bench_pr6.py            # full
    PYTHONPATH=src python benchmarks/bench_pr6.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml import perf
from paxml.query import parse_query
from paxml.query.incremental import IncrementalQueryEvaluator
from paxml.system import materialize
from paxml.tree.node import label, val
from paxml.tree.reduction import antichain_insert, canonical_key
from paxml.tree.subsumption import forest_equivalent
from paxml.workloads import chain_edges, random_edges, relation_tree, tc_system

from harness import timed_cpu, write_bench_json

JOIN2 = "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}"

# The planned-mode times BENCH_pr4.json recorded on its own machine
# state, kept for cross-session reference (NOT the gate; see module doc).
# e3 is the identical workload; the PR 4 run measured e4 on TC(chain-32)
# where this file gates on chain-40, hence the explicit field name.
RECORDED_PR4 = {"e3_join_probe": 0.1575, "e4_datalog_tc_chain32": 0.4223}

SPEEDUP_GATE = 3.0


def _mode(pr6: bool) -> None:
    """PR 4 baseline (new flags off) vs PR 6 (everything on)."""
    perf.flags.set_all(True)
    if not pr6:
        perf.flags.columnar_store = False
        perf.flags.closure_compile = False
    perf.clear_caches()
    perf.stats.reset()


def _pr6_stats(stats: dict) -> dict:
    keys = ("closure_compilations", "bitset_rejects",
            "subsumption_early_rejects", "store_graft_patches",
            "store_rebuild_patches", "facade_materializations",
            "const_subpattern_tests")
    return {key: stats[key] for key in keys}


def bench_e3(base_rows: int, batches: int, batch_rows: int,
             repeats: int) -> dict:
    total = base_rows + batches * batch_rows
    edges = random_edges(max(total // 2, 2), total, seed=3)
    query = parse_query(JOIN2)

    def grow(document, batch):
        start = base_rows + batch * batch_rows
        for a, b in edges[start:start + batch_rows]:
            document.add_child(
                label("t", label("c0", val(a)), label("c1", val(b))))

    def run_once(pr6):
        _mode(pr6)
        document = relation_tree(edges[:base_rows])
        evaluator = IncrementalQueryEvaluator(query)
        accumulated = []
        elapsed = 0.0
        for batch in range(batches + 1):
            if batch:
                grow(document, batch - 1)
            seconds, delta = timed_cpu(
                lambda: evaluator.evaluate_delta({"d": document},
                                                 site="bench"))
            elapsed += seconds
            for tree in delta:
                antichain_insert(accumulated, tree)
        return elapsed, accumulated, perf.stats.snapshot()

    # Interleave the configurations: CPU-frequency drift on a shared
    # host moves slowly, so back-to-back pairs see the same clock and
    # the best-of ratio cancels it; two separate blocks would not.
    t_pr4 = t_pr6 = None
    for _ in range(repeats):
        elapsed4, answers_pr4, _ = run_once(False)
        elapsed6, answers_pr6, stats = run_once(True)
        t_pr4 = elapsed4 if t_pr4 is None else min(t_pr4, elapsed4)
        t_pr6 = elapsed6 if t_pr6 is None else min(t_pr6, elapsed6)
    return {
        "workload": f"join2 over growing relation ({base_rows}→{total} rows, "
                    f"{batches + 1} delta evaluations, best of {repeats})",
        "pr4_config_seconds": round(t_pr4, 4),
        "pr6_seconds": round(t_pr6, 4),
        "speedup": round(t_pr4 / t_pr6, 2),
        "recorded_pr4_seconds": RECORDED_PR4["e3_join_probe"],
        "answers": len(answers_pr6),
        "pr6_stats": _pr6_stats(stats),
        "answers_equivalent": forest_equivalent(answers_pr6, answers_pr4),
    }


def bench_e4(chain_n: int, repeats: int) -> dict:
    def run_once(pr6):
        _mode(pr6)
        system = tc_system(chain_edges(chain_n))
        seconds, outcome = timed_cpu(
            lambda: materialize(system, max_steps=1_000_000))
        keys = {name: canonical_key(doc.root)
                for name, doc in system.documents.items()}
        return seconds, outcome, keys, perf.stats.snapshot()

    # Interleaved for the same drift-cancelling reason as bench_e3.
    t_pr4 = t_pr6 = None
    for _ in range(repeats):
        elapsed4, out_pr4, keys_pr4, _ = run_once(False)
        elapsed6, out_pr6, keys_pr6, stats = run_once(True)
        t_pr4 = elapsed4 if t_pr4 is None else min(t_pr4, elapsed4)
        t_pr6 = elapsed6 if t_pr6 is None else min(t_pr6, elapsed6)
    return {
        "workload": f"TC(chain-{chain_n}) materialization "
                    f"(best of {repeats})",
        "pr4_config_seconds": round(t_pr4, 4),
        "pr6_seconds": round(t_pr6, 4),
        "speedup": round(t_pr4 / t_pr6, 2),
        "recorded_pr4_chain32_seconds": RECORDED_PR4["e4_datalog_tc_chain32"],
        "pr4_config_invocations": out_pr4.steps,
        "pr6_invocations": out_pr6.steps,
        "pr6_stats": _pr6_stats(stats),
        "documents_equivalent": keys_pr6 == keys_pr4,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI subset (the ≥3× ratio gate and the "
                             "equivalence checks still apply)")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    out = args.out or os.path.join(root, "BENCH_pr6.json")

    if args.smoke:
        # Same workload shapes as the full run (the bitset advantage
        # scales with sibling width, so shrinking the trees would gate a
        # different kernel); only the repeat count is reduced.
        scenarios = {
            "e3_join_probe": bench_e3(base_rows=100, batches=8,
                                      batch_rows=20, repeats=2),
            "e4_datalog_tc": bench_e4(chain_n=40, repeats=3),
        }
    else:
        scenarios = {
            "e3_join_probe": bench_e3(base_rows=100, batches=10,
                                      batch_rows=20, repeats=3),
            "e4_datalog_tc": bench_e4(chain_n=40, repeats=3),
        }
    perf.flags.set_all(True)

    failures = []
    for name, scenario in scenarios.items():
        for check in ("documents_equivalent", "answers_equivalent"):
            if scenario.get(check) is False:
                failures.append(f"{name}: {check} failed")
        if scenario["speedup"] < SPEEDUP_GATE:
            failures.append(f"{name}: speedup {scenario['speedup']}x < "
                            f"{SPEEDUP_GATE}x")

    write_bench_json(out, scenarios)
    for name, scenario in scenarios.items():
        print(f"  {name}: {scenario['speedup']}x "
              f"({scenario['pr4_config_seconds']}s → "
              f"{scenario['pr6_seconds']}s)")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
