"""E2 — Theorem 2.1: confluence of fair rewritings.

Runs the jazz-portal and transitive-closure systems under many invocation
orders (round-robin, LIFO, seeded random) and checks every run terminates
in the *same* system (canonical signatures collapse to one).  The
benchmark measures a full materialisation; the rows report signatures and
step counts per schedule.
"""

import pytest

from paxml.system import RewritingEngine
from paxml.workloads import chain_edges, portal_system, tc_system

from .harness import print_table

SCHEDULES = [("round_robin", None), ("lifo", None)] + [
    ("random", seed) for seed in range(6)
]


def _signature(system) -> frozenset:
    return frozenset(system.signature().items())


@pytest.mark.parametrize("scheduler,seed", SCHEDULES[:4])
def test_materialisation_under_schedule(benchmark, scheduler, seed):
    base = tc_system(chain_edges(6))
    benchmark.group = "E2 materialise TC(chain-6)"
    benchmark.name = f"{scheduler}{'' if seed is None else f'#{seed}'}"

    def once():
        system = base.copy()
        RewritingEngine(system, scheduler=scheduler, seed=seed).run()
        return system

    benchmark(once)


def test_e2_rows(benchmark):
    rows = []
    for name, factory in [
        ("TC(chain-6)", lambda: tc_system(chain_edges(6))),
        ("portal(12 cds)", lambda: portal_system(12, seed=7)),
    ]:
        signatures = set()
        for scheduler, seed in SCHEDULES:
            system = factory()
            result = RewritingEngine(system, scheduler=scheduler,
                                     seed=seed).run()
            signatures.add(_signature(system))
            rows.append((name, f"{scheduler}{'' if seed is None else seed}",
                         result.steps, result.productive_steps,
                         len(signatures)))
        assert len(signatures) == 1, f"confluence violated on {name}"
    print_table("E2: confluence across schedules (Thm. 2.1)",
                ["system", "schedule", "steps", "productive",
                 "distinct-limits"], rows)
    benchmark(lambda: None)
