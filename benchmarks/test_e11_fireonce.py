"""E11 — Section 4 (end): fire-once vs the positive semantics.

Rows: on growing transitive closures, the positive semantics derives the
full closure while fire-once withholds the recursive rule and keeps only
the copied base relation; on an acyclic pipeline the two coincide
(the paper's coincidence claim).  Shape: the positive/fire-once fact gap
equals |TC| − |base| and grows quadratically on chains.
"""

import time

import pytest

from paxml.query import evaluate_snapshot, parse_query
from paxml.system import AXMLSystem, fire_once, materialize
from paxml.workloads import chain_edges, tc_system

from .harness import print_table

PAIRS = parse_query("p{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}")

SIZES = [4, 8, 16]


def acyclic_pipeline() -> AXMLSystem:
    return AXMLSystem.build(
        documents={"d": "top{!f}", "e": "mid{!g}", "base": "src{v{1}, v{2}}"},
        services={
            "f": "copy{$x} :- e/mid{leaf{$x}}",
            "g": "leaf{$x} :- base/src{v{$x}}",
        },
    )


@pytest.mark.parametrize("n", SIZES)
def test_fire_once_cost(benchmark, n):
    benchmark.group = "E11 fire-once"
    benchmark.name = f"chain-{n}"
    benchmark(lambda: fire_once(tc_system(chain_edges(n))))


def test_e11_rows(benchmark):
    rows = []
    for n in SIZES:
        positive = tc_system(chain_edges(n))
        materialize(positive)
        full = len(evaluate_snapshot(PAIRS, positive.environment()))

        once = tc_system(chain_edges(n))
        start = time.perf_counter()
        report = fire_once(once)
        elapsed = time.perf_counter() - start
        partial = len(evaluate_snapshot(PAIRS, once.environment()))
        assert partial == n            # just the base facts
        assert full == n * (n + 1) // 2
        rows.append((f"tc chain-{n}", full, partial, full - partial,
                     sorted(report.skipped_recursive),
                     f"{elapsed * 1e3:.1f} ms"))
    # The acyclic coincidence row.
    reference = acyclic_pipeline()
    materialize(reference)
    subject = acyclic_pipeline()
    report = fire_once(subject)
    coincide = subject.equivalent_to(reference) and report.complete
    assert coincide
    rows.append(("acyclic pipeline", "=", "=", 0, "[] (coincide)", "-"))
    print_table("E11: fire-once vs positive semantics (Section 4)",
                ["system", "positive facts", "fire-once facts", "lost",
                 "withheld", "time"], rows)
    benchmark(lambda: None)
