"""E1 — Proposition 2.1(3,4): subsumption and reduction are PTIME.

Regenerates the claim's computational content: wall-clock for subsumption
tests and reduction passes over random trees of doubling size.  The shape
to check (EXPERIMENTS.md): near-quadratic growth — polynomial, far from
exponential — and the duplicate-heavy family costs more per node than the
near-reduced one.
"""

import time

import pytest

from paxml.tree import is_subsumed, reduced_copy
from paxml.workloads import duplicate_heavy_tree, random_tree

SIZES = [50, 100, 200, 400, 800]


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.parametrize("size", SIZES)
def test_subsumption_scaling(benchmark, size):
    left = random_tree(size, seed=1, label_pool=3)
    right = random_tree(size, seed=2, label_pool=3)
    benchmark.group = "E1 subsumption"
    benchmark.name = f"n={size}"
    benchmark(lambda: (is_subsumed(left, right), is_subsumed(left, left)))


@pytest.mark.parametrize("size", SIZES)
def test_reduction_scaling(benchmark, size):
    tree = duplicate_heavy_tree(size, seed=3)
    benchmark.group = "E1 reduction"
    benchmark.name = f"n={size}"
    benchmark(lambda: reduced_copy(tree))


def test_e1_rows(benchmark):
    """Print the experiment rows and assert the polynomial shape."""
    from .harness import print_table

    rows = []
    timings = []
    for size in SIZES:
        left = random_tree(size, seed=1, label_pool=3)
        right = random_tree(size, seed=2, label_pool=3)
        heavy = duplicate_heavy_tree(size, seed=3)
        t_sub = _time(lambda: is_subsumed(left, right))
        t_red = _time(lambda: reduced_copy(heavy))
        reduction = heavy.size() - reduced_copy(heavy).size()
        rows.append((size, f"{t_sub * 1e3:.2f} ms", f"{t_red * 1e3:.2f} ms",
                     f"-{reduction} nodes"))
        timings.append((size, t_sub, t_red))
    print_table("E1: subsumption & reduction scaling (Prop. 2.1)",
                ["n", "subsume", "reduce", "pruned"], rows)

    # Shape check: 16× more nodes should cost far less than a 16^3 blowup
    # (comfortably polynomial); guard against pathological regressions.
    n0, s0, r0 = timings[0]
    n4, s4, r4 = timings[-1]
    growth = (n4 / n0) ** 4  # very generous quartic envelope
    assert s4 <= max(growth * s0, s0 + 2.0)
    assert r4 <= max(growth * r0, r0 + 2.0)
    benchmark(lambda: None)  # row-printer itself is not the measurement
