"""PR 7 benchmark: the multi-tenant serving layer.

Produces ``BENCH_pr7.json`` (repo root by default).  Two scenarios:

* ``many_tenants`` — ≥100 concurrent :class:`TenantSession`\\ s, each a
  small transitive-closure system, driven to their fixpoints through the
  admission controller's round-robin attempt leases on one event loop.
  Reports sustained productive grafts/sec across the whole fleet and
  gates on every tenant actually reaching its fixpoint.

* ``subscriber_fanout`` — one tenant, one continuous query, N
  subscribers for N in {1, 10, 100}; a fixed batch of external grafts is
  injected and fully delivered to every subscriber.  The serving
  contract is that a graft costs one delta evaluation per *query*, not
  per subscriber — subscribers share the answer log and only hold
  cursors — so per-graft delivery time must grow (much) slower than
  subscriber count.  The gate: going 10× from 10 to 100 subscribers may
  cost at most ``FANOUT_GATE``× (default 5×) in per-graft time, i.e.
  demonstrably sub-linear.

Times are process CPU seconds (the loop is single-threaded compute;
wall-clock on a shared container would gate on machine load).

Run::

    PYTHONPATH=src python benchmarks/bench_pr7.py            # full
    PYTHONPATH=src python benchmarks/bench_pr7.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml.serve import AdmissionController, TenantBudget, TenantSession
from paxml.tree.parser import parse_tree
from paxml.workloads import random_edges, tc_system

from harness import write_bench_json

FANOUT_GATE = 5.0     # ≤5x per-graft cost for 10x subscribers (10 -> 100)


# ----------------------------------------------------------------------
# scenario A: a fleet of tenants through admission
# ----------------------------------------------------------------------


def bench_many_tenants(n_tenants: int, slice_attempts: int = 32) -> dict:
    sessions = {}
    control = AdmissionController(TenantBudget(slice_attempts=slice_attempts))
    for i in range(n_tenants):
        name = f"tenant{i:03d}"
        sessions[name] = TenantSession(
            name, tc_system(random_edges(4, 5 + i % 3, seed=i)))
        control.register(name)

    async def drive() -> int:
        slices = 0
        while True:
            now = asyncio.get_event_loop().time()
            tenant = control.next_tenant(
                lambda name: sessions[name].runnable_at(now))
            if tenant is None:
                if not any(s.has_work() for s in sessions.values()):
                    return slices
                await asyncio.sleep(0.001)
                continue
            session = sessions[tenant]
            before = session.kernel.scheduler.attempts
            await session.run_slice(control.lease(tenant))
            control.settle(tenant,
                           session.kernel.scheduler.attempts - before)
            slices += 1

    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    slices = asyncio.run(drive())
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start

    grafts = sum(s.kernel.productive for s in sessions.values())
    steps = sum(s.kernel.steps for s in sessions.values())
    all_done = all(not s.has_work() for s in sessions.values())
    return {
        "tenants": n_tenants,
        "slices": slices,
        "grafts": grafts,
        "invocations": steps,
        "cpu_seconds": round(cpu, 4),
        "wall_seconds": round(wall, 4),
        "grafts_per_second": round(grafts / cpu, 1) if cpu else None,
        "all_fixpoints_reached": all_done,
    }


# ----------------------------------------------------------------------
# scenario B: subscriber fan-out on one query
# ----------------------------------------------------------------------


def _fanout_once(n_subscribers: int, n_grafts: int) -> dict:
    session = TenantSession(f"fanout{n_subscribers}",
                            tc_system([(0, 1)]))
    subs = [session.subscribe("p{*T} :- d0/r{*T}")
            for _ in range(n_subscribers)]

    async def drive():
        while session.has_work():
            await session.run_slice(100_000)

        start = time.process_time()
        for i in range(n_grafts):
            session.inject(
                "d0", [parse_tree(f"t{{c0{{{i + 10}}}, c1{{{i + 11}}}}}")])
            # Deliver this graft's delta to every subscriber before the
            # next lands — the per-prefix serving pattern.
            for sub in subs:
                batch = await sub.next_batch(timeout=5.0)
                assert batch, "subscriber missed a delta"
        return time.process_time() - start

    cpu = asyncio.run(drive())
    total = session.kernel.productive
    assert all(sub.drain() == [] for sub in subs)
    return {
        "subscribers": n_subscribers,
        "grafts": n_grafts,
        "cpu_seconds": round(cpu, 4),
        "cpu_per_graft_ms": round(cpu / n_grafts * 1000, 4),
        "productive_total": total,
    }


def bench_fanout(n_grafts: int) -> dict:
    points = {n: _fanout_once(n, n_grafts) for n in (1, 10, 100)}
    per_graft = {n: p["cpu_per_graft_ms"] for n, p in points.items()}
    # 10 -> 100 subscribers is 10x fan-out; the shared-log design must
    # keep the cost growth well under that.
    ratio = (per_graft[100] / per_graft[10]) if per_graft[10] else None
    return {
        "points": list(points.values()),
        "cost_ratio_100_vs_10_subs": round(ratio, 3) if ratio else None,
        "fanout_gate": FANOUT_GATE,
        "sub_linear": ratio is not None and ratio < FANOUT_GATE,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: fewer tenants and grafts")
    parser.add_argument("--out", default=None,
                        help="output path (default: repo-root BENCH_pr7.json)")
    args = parser.parse_args(argv)
    out = args.out or os.path.join(os.path.dirname(__file__), os.pardir,
                                   "BENCH_pr7.json")

    if args.smoke:
        scenarios = {
            "many_tenants": bench_many_tenants(100),
            "subscriber_fanout": bench_fanout(n_grafts=15),
        }
    else:
        scenarios = {
            "many_tenants": bench_many_tenants(120),
            "subscriber_fanout": bench_fanout(n_grafts=40),
        }

    failures = []
    many = scenarios["many_tenants"]
    if not many["all_fixpoints_reached"]:
        failures.append("many_tenants: a tenant failed to reach fixpoint")
    if many["tenants"] < 100:
        failures.append("many_tenants: fewer than 100 concurrent sessions")
    fanout = scenarios["subscriber_fanout"]
    if not fanout["sub_linear"]:
        failures.append(
            f"subscriber_fanout: 100-vs-10 cost ratio "
            f"{fanout['cost_ratio_100_vs_10_subs']} >= {FANOUT_GATE} "
            "(fan-out is not sub-linear)")

    write_bench_json(out, scenarios)
    print(f"  many_tenants: {many['tenants']} sessions, "
          f"{many['grafts']} grafts sustained at "
          f"{many['grafts_per_second']}/s (cpu)")
    print(f"  subscriber_fanout: per-graft "
          + ", ".join(f"{p['subscribers']} subs = {p['cpu_per_graft_ms']}ms"
                      for p in fanout["points"])
          + f" -> 100/10 ratio {fanout['cost_ratio_100_vs_10_subs']}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
