"""E10 — Section 5's nesting construction via ``context``.

Rows: nesting a flat binary relation on its a-column with the paper's
two-service simple system, sweeping relation size.  Shape: invocation
count grows with (groups + pairs) — each group fires its ``g`` call until
its b-values are exhausted — and the nested output is verified against a
directly computed grouping.
"""

import time
from collections import defaultdict

import pytest

from paxml.query import evaluate_snapshot, parse_query
from paxml.system import AXMLSystem, Status, materialize
from paxml.tree import label, val
from paxml.workloads import random_edges

from .harness import print_table


def nesting_system(pairs) -> AXMLSystem:
    flat = label("r", *[
        label("t", label("a", val(a)), label("b", val(b))) for a, b in pairs
    ])
    return AXMLSystem.build(
        documents={"d": flat, "dnest": "r{!f}"},
        services={
            "f": "t{a{$x}, !g} :- d/r{t{a{$x}}}",
            "g": "b{$y} :- context/t{a{$x}}, d/r{t{a{$x}, b{$y}}}",
        },
    )


def grouped(pairs):
    groups = defaultdict(set)
    for a, b in pairs:
        groups[a].add(b)
    return dict(groups)


SIZES = [4, 8, 16, 32]


@pytest.mark.parametrize("n", SIZES[:3])
def test_nesting_cost(benchmark, n):
    pairs = random_edges(max(3, n // 2), n, seed=n)
    benchmark.group = "E10 nesting"
    benchmark.name = f"pairs={n}"

    def once():
        system = nesting_system(pairs)
        materialize(system)
        return system

    benchmark(once)


def test_e10_rows(benchmark):
    rows = []
    for n in SIZES:
        pairs = random_edges(max(3, n // 2), n, seed=n)
        system = nesting_system(pairs)
        assert system.is_simple  # the paper: nesting stays simple here
        start = time.perf_counter()
        outcome = materialize(system)
        elapsed = time.perf_counter() - start
        assert outcome.status is Status.TERMINATED

        # Verify the nested document against a direct grouping.
        want = grouped(pairs)
        query = parse_query("pair{a{$x}, b{$y}} :- dnest/r{t{a{$x}, b{$y}}}")
        derived = defaultdict(set)
        for tree in evaluate_snapshot(query, system.environment()):
            by_label = {c.marking.name: c.children[0].marking.value
                        for c in tree.children}
            derived[by_label["a"]].add(by_label["b"])
        assert dict(derived) == want, n
        rows.append((n, len(want), outcome.steps, f"{elapsed * 1e3:.1f} ms",
                     "ok"))
    print_table("E10: nesting a relation via context (Section 5)",
                ["pairs", "groups", "invocations", "time", "verified"], rows)
    benchmark(lambda: None)
