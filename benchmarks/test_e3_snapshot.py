"""E3 — Proposition 3.1(3): snapshot evaluation is PTIME.

Sweeps document size (relation rows) and query size (join width) and
measures snapshot evaluation.  Shape: polynomial in the document for a
fixed query (the join width sits in the exponent, as for conjunctive
queries over relations).
"""

import time

import pytest

from paxml.query import evaluate_snapshot, parse_query
from paxml.workloads import random_edges, relation_tree

from .harness import print_table

PROJECT = parse_query("p{$x} :- d/r{t{c0{$x}}}")
JOIN2 = parse_query(
    "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}")
JOIN3 = parse_query(
    "p{c0{$x}, c1{$w}} :- d/r{t{c0{$x}, c1{$y}}, t{c0{$y}, c1{$z}}, "
    "t{c0{$z}, c1{$w}}}")

SIZES = [20, 40, 80, 160]


def _doc(rows: int):
    return relation_tree(random_edges(rows // 2, rows, seed=rows))


@pytest.mark.parametrize("rows", SIZES)
def test_projection_scaling(benchmark, rows):
    document = _doc(rows)
    benchmark.group = "E3 projection"
    benchmark.name = f"rows={rows}"
    benchmark(lambda: evaluate_snapshot(PROJECT, {"d": document}))


@pytest.mark.parametrize("rows", SIZES[:3])
def test_join_scaling(benchmark, rows):
    document = _doc(rows)
    benchmark.group = "E3 two-way join"
    benchmark.name = f"rows={rows}"
    benchmark(lambda: evaluate_snapshot(JOIN2, {"d": document}))


def test_e3_rows(benchmark):
    rows_out = []
    for rows in SIZES:
        document = _doc(rows)
        timings = {}
        answers = {}
        for label, query in [("project", PROJECT), ("join2", JOIN2),
                             ("join3", JOIN3)]:
            start = time.perf_counter()
            answers[label] = len(evaluate_snapshot(query, {"d": document}))
            timings[label] = time.perf_counter() - start
        rows_out.append((
            rows,
            f"{timings['project'] * 1e3:.2f} ms ({answers['project']})",
            f"{timings['join2'] * 1e3:.2f} ms ({answers['join2']})",
            f"{timings['join3'] * 1e3:.2f} ms ({answers['join3']})",
        ))
    print_table("E3: snapshot evaluation, size sweep (Prop. 3.1(3))",
                ["rows", "projection", "2-way join", "3-way join"], rows_out)
    benchmark(lambda: None)
