"""PR 3 benchmark: what the observability layer costs, on and off.

Produces ``BENCH_pr3.json`` (repo root by default) with two scenarios:

* ``e4_tracing_overhead`` — the PR 1 stress workload (transitive closure
  of a chain, latency-free, so instrumentation cost has nowhere to
  hide).  Off/on A/B medians, events/sec with tracing on, and the
  estimated tracing-off overhead.
* ``fanout_tracing_overhead`` — the PR 2 workload (jazz portal fan-out
  through the async runtime with simulated per-call latency) under the
  same A/B.

The tracing-*off* budget (≤ 5 % of scenario wall-clock, the CI gate) is
estimated directly rather than read off the A/B delta: the off-path cost
of one instrumentation point is a single ``if obs_bus.ACTIVE:`` check,
so the benchmark times that check in isolation and multiplies by a
conservative estimate of how many times the run executes it (2× the
events a traced run emits — guards on unproductive paths emit nothing).
A/B medians are reported too, but for overheads this small they sit
inside run-to-run noise, which is exactly why the microbenchmark is the
gated number.

Run::

    PYTHONPATH=src python benchmarks/bench_pr3.py              # full
    PYTHONPATH=src python benchmarks/bench_pr3.py --smoke      # CI subset
    PYTHONPATH=src python benchmarks/bench_pr3.py --artifacts DIR
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml import obs, perf
from paxml.obs import bus as obs_bus
from paxml.obs.provenance import clear_staged
from paxml.runtime import AsyncRuntime, LocalTransport, RuntimeConfig
from paxml.system import materialize
from paxml.workloads import chain_edges, portal_system, tc_system

from harness import timed, write_bench_json

OVERHEAD_BUDGET_PCT = 5.0
GUARDS_PER_EVENT = 2  # guard sites outnumber emitted events; 2× is generous


def _fresh_run_state() -> None:
    perf.flags.set_all(True)
    perf.clear_caches()
    perf.stats.reset()
    clear_staged()


def guard_cost_seconds(iterations: int = 2_000_000) -> float:
    """Wall-clock of one disabled ``if obs_bus.ACTIVE:`` check.

    Times a loop of guard checks against an empty loop of the same shape
    and returns the per-iteration difference (clamped at zero: the two
    loops can jitter past each other when the guard is this cheap).
    """
    obs_bus.disable()
    r = range(iterations)
    start = time.perf_counter()
    for _ in r:
        if obs_bus.ACTIVE:
            obs_bus.emit("never")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in r:
        pass
    empty = time.perf_counter() - start
    return max(guarded - empty, 0.0) / iterations


def _ab_rows(off_seconds, on_seconds, steps_off, steps_on, events,
             workload, guard_cost):
    off_median = statistics.median(off_seconds)
    on_median = statistics.median(on_seconds)
    guard_checks = events * GUARDS_PER_EVENT
    estimated_pct = (100.0 * guard_cost * guard_checks / off_median
                     if off_median else 0.0)
    return {
        "workload": workload,
        "tracing_off_seconds_median": round(off_median, 4),
        "tracing_on_seconds_median": round(on_median, 4),
        "on_off_ratio": round(on_median / off_median, 3) if off_median else 1.0,
        "events": events,
        "events_per_second": round(events / on_median) if on_median else 0,
        "guard_cost_ns": round(guard_cost * 1e9, 2),
        "guard_checks_estimate": guard_checks,
        "estimated_off_overhead_pct": round(estimated_pct, 4),
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "within_budget": estimated_pct <= OVERHEAD_BUDGET_PCT,
        "steps_match": steps_off == steps_on,
    }


def bench_sequential(chain_n: int, repeats: int, guard_cost: float,
                     artifacts: str | None) -> dict:
    def build():
        return tc_system(chain_edges(chain_n))

    off_seconds, off_steps = [], set()
    for _ in range(repeats):
        _fresh_run_state()
        system = build()
        seconds, result = timed(
            lambda: materialize(system, max_steps=1_000_000))
        off_seconds.append(seconds)
        off_steps.add(result.steps)

    on_seconds, on_steps = [], set()
    recorder = None
    for _ in range(repeats):
        _fresh_run_state()
        system = build()
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            seconds, result = timed(
                lambda: materialize(system, max_steps=1_000_000))
        on_seconds.append(seconds)
        on_steps.add(result.steps)

    if artifacts and recorder is not None:
        obs.write_jsonl(recorder.events,
                        os.path.join(artifacts, "e4.events.jsonl"))
        obs.write_chrome_trace(recorder.events,
                               os.path.join(artifacts, "e4.trace.json"))
    row = _ab_rows(off_seconds, on_seconds, off_steps, on_steps,
                   len(recorder.events),
                   f"TC(chain-{chain_n}) sequential, latency-free",
                   guard_cost)
    index = recorder.provenance()
    row["grafts"] = len(index)
    row["derived_nodes"] = len(index.derived_uids())
    return row


def bench_fanout(n_cds: int, latency: float, repeats: int, guard_cost: float,
                 artifacts: str | None) -> dict:
    def build():
        return portal_system(n_cds, materialized_fraction=0.0,
                             n_irrelevant=max(n_cds // 4, 2), seed=0)

    def run():
        system = build()
        transport = LocalTransport(system, latency=latency)
        config = RuntimeConfig(concurrency=8, seed=0)
        runtime = AsyncRuntime(system, transport=transport, config=config)
        return timed(runtime.run)

    off_seconds, off_steps = [], set()
    for _ in range(repeats):
        _fresh_run_state()
        seconds, result = run()
        off_seconds.append(seconds)
        off_steps.add(result.invocations)

    on_seconds, on_steps = [], set()
    recorder = None
    for _ in range(repeats):
        _fresh_run_state()
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            seconds, result = run()
        on_seconds.append(seconds)
        on_steps.add(result.invocations)

    if artifacts and recorder is not None:
        obs.write_jsonl(recorder.events,
                        os.path.join(artifacts, "fanout.events.jsonl"))
        obs.write_chrome_trace(recorder.events,
                               os.path.join(artifacts, "fanout.trace.json"))
    return _ab_rows(off_seconds, on_seconds, off_steps, on_steps,
                    len(recorder.events),
                    f"portal({n_cds}) async fan-out, "
                    f"{latency * 1000:.0f}ms per call, concurrency 8",
                    guard_cost)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--artifacts", default=None,
                        help="directory for Chrome traces + JSONL event logs")
    args = parser.parse_args(argv)

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    out = args.out or os.path.join(root, "BENCH_pr3.json")
    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)

    guard_cost = guard_cost_seconds(
        iterations=300_000 if args.smoke else 2_000_000)

    if args.smoke:
        sequential = bench_sequential(chain_n=10, repeats=3,
                                      guard_cost=guard_cost,
                                      artifacts=args.artifacts)
        fanout = bench_fanout(n_cds=6, latency=0.003, repeats=2,
                              guard_cost=guard_cost, artifacts=args.artifacts)
    else:
        sequential = bench_sequential(chain_n=24, repeats=5,
                                      guard_cost=guard_cost,
                                      artifacts=args.artifacts)
        fanout = bench_fanout(n_cds=16, latency=0.005, repeats=3,
                              guard_cost=guard_cost, artifacts=args.artifacts)

    scenarios = {
        "e4_tracing_overhead": sequential,
        "fanout_tracing_overhead": fanout,
    }
    write_bench_json(out, scenarios)

    failures = []
    for name, row in scenarios.items():
        print(f"  {name}: off {row['tracing_off_seconds_median']}s, "
              f"on {row['tracing_on_seconds_median']}s "
              f"({row['events']} events, "
              f"{row['events_per_second']}/s on), "
              f"estimated off-overhead "
              f"{row['estimated_off_overhead_pct']}%")
        if not row["within_budget"]:
            failures.append(
                f"{name}: estimated off-overhead "
                f"{row['estimated_off_overhead_pct']}% exceeds "
                f"{OVERHEAD_BUDGET_PCT}%")
        if not row["steps_match"]:
            failures.append(f"{name}: step counts differ between traced "
                            "and untraced runs")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
