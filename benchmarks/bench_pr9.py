"""PR 9 benchmark: sharded multi-process execution.

Produces ``BENCH_pr9.json`` (repo root by default).  Three scenarios:

* ``fleet_scaling`` — the PR 7 many-tenants fleet (120 independent
  transitive-closure tenants) placed on shard session-host workers
  through :class:`~paxml.serve.shard_pool.ShardPool`, at 1 and 4
  workers.  The container this runs in has a single CPU, so wall-clock
  cannot show parallel speedup; the metric that can is *CPU-time
  throughput* — total productive grafts divided by the **maximum
  per-worker process CPU time**, i.e. the critical path a multi-core
  machine would pay.  Gate: ≥2.5× at 4 workers vs 1 (the GIL-escape
  claim).  Sampled tenants are asserted equivalent to single-process
  ``materialize`` runs of the same systems.

* ``batch_scaling`` — one multi-document batch system (K independent
  closure pairs in a single ``AXMLSystem``) through the coordinator's
  BSP rounds (:func:`~paxml.shard.run_sharded`) at 1, 2 and 4 shards,
  replicate mode, sequential workers (the async engine's snapshot
  isolation costs ~10× on dense closures regardless of sharding, which
  would drown the partitioning signal).  Every point asserts forest
  equivalence against the sequential fixpoint; a separate oracle run
  at the highest shard count turns per-worker replay validation on
  (``ReplayDivergence`` as the consistency oracle) — validation replays
  the *global* log in every worker, so it is kept off the scaling
  points.  Replicate mode deliberately pays a consistency cost that
  does not shard: every worker applies the full remote record stream
  to its replicas (single-writer replication), so per-worker CPU has a
  floor proportional to total output and the measured speedup at 4
  shards lands around 1.6–2.3× rather than 4× (the fleet scenario,
  with no cross-shard data flow, is the near-linear regime).  Gate:
  ≥1.5× at 4 shards.

* ``codec`` — the compact batched PXG1 wire codec versus the legacy
  per-record JSONL spelling, on the graft log of a real portal run:
  encoded bytes and encode+decode CPU cost, the serialization-cost
  refactor ROADMAP item 1 predicted replication would force.

Run::

    PYTHONPATH=src python benchmarks/bench_pr9.py            # full
    PYTHONPATH=src python benchmarks/bench_pr9.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml.kernel import EvaluationKernel
from paxml.kernel.graft import GraftRecord, decode_batch, encode_batch
from paxml.serve.shard_pool import ShardPool
from paxml.shard import run_sharded
from paxml.system import AXMLSystem, RewritingEngine, materialize
from paxml.tree.serializer import to_canonical
from paxml.workloads import portal_system, random_edges, tc_system

from harness import write_bench_json

FLEET_GATE = 2.5      # CPU-time throughput, 4 workers vs 1
FLEET_GATE_SMOKE = 1.3
BATCH_GATE = 1.5      # 4 shards vs 1 (replica application caps this
                      # below linear — see the module docstring)
EQUIV_SAMPLE = 10     # every Nth tenant checked against materialize


# ----------------------------------------------------------------------
# scenario A: the many-tenants fleet on shard workers
# ----------------------------------------------------------------------


def _tc_text(edges) -> str:
    rows = ", ".join(f"t{{c0{{{a}}}, c1{{{b}}}}}" for a, b in edges)
    return (
        f"@document d0\nr{{{rows}}}\n\n"
        "@document d1\nr{!g, !f}\n\n"
        "@service g\n"
        "t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}\n\n"
        "@service f\n"
        "t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}\n"
    )


def _tenant_edges(i: int):
    return random_edges(4, 5 + i % 3, seed=i)


def _fleet_once(workers: int, n_tenants: int) -> dict:
    spool = tempfile.mkdtemp(prefix="bench-pr9-")

    async def drive() -> dict:
        pool = ShardPool(workers, spool_dir=spool)
        await pool.start()
        try:
            for i in range(n_tenants):
                await pool.place(f"t{i:03d}", _tc_text(_tenant_edges(i)))
            fixpoints = 0
            for i in range(n_tenants):
                result = await pool.forward(
                    "run", {"tenant": f"t{i:03d}", "timeout": 300.0})
                fixpoints += bool(result.get("fixpoint"))
            # Equivalence oracle: sampled tenants must match the
            # single-process fixpoint of the same system.
            matched = 0
            for i in range(0, n_tenants, EQUIV_SAMPLE):
                read = await pool.forward(
                    "read", {"tenant": f"t{i:03d}", "document": "d1"})
                expected = tc_system(_tenant_edges(i))
                assert materialize(expected).terminated
                want = to_canonical(expected.documents["d1"].root)
                assert read["tree"] == want, (
                    f"tenant {i} diverged from the sequential fixpoint")
                matched += 1
            reports = await pool.stats()
            return {"fixpoints": fixpoints, "matched": matched,
                    "reports": reports}
        finally:
            await pool.shutdown()

    wall_start = time.perf_counter()
    outcome = asyncio.run(drive())
    wall = time.perf_counter() - wall_start
    shutil.rmtree(spool, ignore_errors=True)

    reports = outcome["reports"]
    cpu_per_worker = {r["shard"]: r["cpu_seconds"] for r in reports}
    grafts = sum(t["productive"] for r in reports for t in r["tenants"])
    max_cpu = max(cpu_per_worker.values())
    return {
        "workers": workers,
        "tenants": n_tenants,
        "fixpoints_reached": outcome["fixpoints"],
        "equivalence_checked": outcome["matched"],
        "grafts": grafts,
        "cpu_seconds_per_worker": {str(k): round(v, 4)
                                   for k, v in sorted(cpu_per_worker.items())},
        "max_worker_cpu_seconds": round(max_cpu, 4),
        "wall_seconds": round(wall, 4),
        "grafts_per_cpu_second": round(grafts / max_cpu, 1) if max_cpu
        else None,
    }


def bench_fleet(n_tenants: int, worker_counts=(1, 4)) -> dict:
    points = [_fleet_once(workers, n_tenants) for workers in worker_counts]
    base = points[0]["grafts_per_cpu_second"]
    top = points[-1]["grafts_per_cpu_second"]
    speedup = round(top / base, 3) if base else None
    return {
        "points": points,
        "speedup": speedup,
        "all_fixpoints": all(p["fixpoints_reached"] == p["tenants"]
                             for p in points),
    }


# ----------------------------------------------------------------------
# scenario B: one multi-document batch through BSP rounds
# ----------------------------------------------------------------------


def _batch_system(n_pairs: int, n_nodes: int, n_edges: int,
                  seed: int = 0) -> AXMLSystem:
    documents = {}
    services = {}
    for k in range(n_pairs):
        edges = random_edges(n_nodes, n_edges, seed=seed * 100 + k)
        rows = ", ".join(f"t{{c0{{{a}}}, c1{{{b}}}}}" for a, b in edges)
        documents[f"base{k}"] = f"r{{{rows}}}"
        documents[f"tc{k}"] = f"r{{!g{k}, !f{k}}}"
        services[f"g{k}"] = (f"t{{c0{{$x}}, c1{{$y}}}} :- "
                             f"base{k}/r{{t{{c0{{$x}}, c1{{$y}}}}}}")
        services[f"f{k}"] = (f"t{{c0{{$x}}, c1{{$y}}}} :- "
                             f"tc{k}/r{{t{{c0{{$x}}, c1{{$z}}}}, "
                             f"t{{c0{{$z}}, c1{{$y}}}}}}")
    return AXMLSystem.build(documents=documents, services=services)


def bench_batch(n_pairs: int, n_nodes: int, n_edges: int,
                shard_counts=(1, 2, 4), trials: int = 3) -> dict:
    sequential = _batch_system(n_pairs, n_nodes, n_edges)
    assert materialize(sequential).terminated

    points = []
    for nshards in shard_counts:
        # Best-of-N: the container timeshares one CPU, so individual
        # process CPU readings are noisy; the minimum critical path is
        # the honest measurement of the work a shard actually does.
        best = None
        for _ in range(trials):
            system = _batch_system(n_pairs, n_nodes, n_edges)
            result = run_sharded(system, nshards, engine="sequential",
                                 validate_replay=False)
            assert not result.failures, result.failures
            assert result.equivalent_to(sequential), (
                f"{nshards}-shard forest diverged from the "
                "sequential fixpoint")
            max_cpu = max(result.cpu_seconds.values())
            if best is None or max_cpu < best[0]:
                best = (max_cpu, result)
        max_cpu, result = best
        points.append({
            "shards": nshards,
            "documents": 2 * n_pairs,
            "rounds": result.rounds,
            "trials": trials,
            "records_replicated": result.records,
            "cpu_seconds_per_worker": {
                str(k): round(v, 4)
                for k, v in sorted(result.cpu_seconds.items())},
            "max_worker_cpu_seconds": round(max_cpu, 4),
            "wall_seconds": round(result.wall_seconds, 4),
            "records_per_cpu_second": round(result.records / max_cpu, 1)
            if max_cpu else None,
        })
    base = points[0]["records_per_cpu_second"]
    top = points[-1]["records_per_cpu_second"]

    # The consistency oracle, once, at the widest partition: every
    # worker replays seed + global log and compares canonical forests.
    oracle_system = _batch_system(max(n_pairs // 2, 2), 12, 30)
    oracle_sequential = _batch_system(max(n_pairs // 2, 2), 12, 30)
    assert materialize(oracle_sequential).terminated
    oracle = run_sharded(oracle_system, shard_counts[-1],
                         engine="sequential", validate_replay=True)
    assert not oracle.failures, oracle.failures
    assert oracle.equivalent_to(oracle_sequential)

    return {
        "points": points,
        "speedup": round(top / base, 3) if base else None,
        "all_equivalent": True,     # asserted above
        "replay_oracle": {
            "shards": shard_counts[-1],
            "records": oracle.records,
            "replay_validated": oracle.replay_ok,
        },
        "all_replay_validated": oracle.replay_ok,
    }


# ----------------------------------------------------------------------
# scenario C: PXG1 codec vs the legacy JSONL spelling
# ----------------------------------------------------------------------


def bench_codec(reps: int) -> dict:
    system = portal_system(8, materialized_fraction=0.4, seed=1)
    kernel = EvaluationKernel(system)
    kernel.log.retain = True
    RewritingEngine(system, kernel=kernel).run()
    records = list(kernel.log)
    assert records, "portal run produced no graft records"

    def time_of(fn) -> float:
        start = time.process_time()
        for _ in range(reps):
            fn()
        return (time.process_time() - start) / reps

    json_text = json.dumps([r.to_json_dict() for r in records])
    packed = encode_batch(records)
    assert decode_batch(packed) == records

    json_encode = time_of(
        lambda: json.dumps([r.to_json_dict() for r in records]))
    json_decode = time_of(
        lambda: [GraftRecord.from_json_dict(d)
                 for d in json.loads(json_text)])
    pxg1_encode = time_of(lambda: encode_batch(records))
    pxg1_decode = time_of(lambda: decode_batch(packed))

    return {
        "records": len(records),
        "reps": reps,
        "json_bytes": len(json_text.encode()),
        "pxg1_bytes": len(packed),
        "bytes_ratio": round(len(json_text.encode()) / len(packed), 3),
        "json_encode_ms": round(json_encode * 1000, 4),
        "pxg1_encode_ms": round(pxg1_encode * 1000, 4),
        "json_decode_ms": round(json_decode * 1000, 4),
        "pxg1_decode_ms": round(pxg1_decode * 1000, 4),
        "roundtrip_exact": True,    # asserted above
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: fewer tenants, relaxed scaling gate")
    parser.add_argument("--out", default=None,
                        help="output path (default: repo-root BENCH_pr9.json)")
    args = parser.parse_args(argv)
    out = args.out or os.path.join(os.path.dirname(__file__), os.pardir,
                                   "BENCH_pr9.json")

    # Batch runs first: fork(2)ed workers inherit the parent heap, and
    # the fleet's 120-tenant bookkeeping would inflate their CPU
    # readings (GC traversal + copy-on-write of inherited pages).
    if args.smoke:
        batch = bench_batch(4, 12, 30, shard_counts=(1, 4), trials=1)
        fleet = bench_fleet(32, worker_counts=(1, 4))
        codec = bench_codec(reps=10)
        fleet_gate = FLEET_GATE_SMOKE
        batch_gate = None           # CI hardware: report, don't gate
    else:
        batch = bench_batch(8, 20, 60, shard_counts=(1, 2, 4))
        fleet = bench_fleet(120, worker_counts=(1, 4))
        codec = bench_codec(reps=50)
        fleet_gate = FLEET_GATE
        batch_gate = BATCH_GATE

    fleet["gate"] = fleet_gate
    batch["gate"] = batch_gate
    scenarios = {"fleet_scaling": fleet, "batch_scaling": batch,
                 "codec": codec}

    failures = []
    if not fleet["all_fixpoints"]:
        failures.append("fleet_scaling: a tenant failed to reach fixpoint")
    if fleet["speedup"] is None or fleet["speedup"] < fleet_gate:
        failures.append(
            f"fleet_scaling: {fleet['speedup']}x CPU-time throughput at "
            f"4 workers < gate {fleet_gate}x")
    if not batch["all_replay_validated"]:
        failures.append("batch_scaling: replay validation failed")
    if batch_gate is not None and (batch["speedup"] is None
                                   or batch["speedup"] < batch_gate):
        failures.append(
            f"batch_scaling: {batch['speedup']}x at 4 shards < gate "
            f"{batch_gate}x (not near-linear)")
    if codec["pxg1_bytes"] >= codec["json_bytes"]:
        failures.append("codec: PXG1 batches are not smaller than JSONL")

    write_bench_json(out, scenarios)
    for point in fleet["points"]:
        print(f"  fleet: {point['workers']} worker(s), "
              f"{point['grafts']} grafts, max worker cpu "
              f"{point['max_worker_cpu_seconds']}s -> "
              f"{point['grafts_per_cpu_second']} grafts/cpu-s")
    print(f"  fleet speedup: {fleet['speedup']}x (gate {fleet_gate}x)")
    for point in batch["points"]:
        print(f"  batch: {point['shards']} shard(s), "
              f"{point['records_replicated']} records, "
              f"{point['rounds']} rounds, max worker cpu "
              f"{point['max_worker_cpu_seconds']}s")
    print(f"  batch speedup: {batch['speedup']}x"
          + (f" (gate {batch_gate}x)" if batch_gate else " (reported)"))
    print(f"  codec: {codec['records']} records, "
          f"{codec['json_bytes']}B json vs {codec['pxg1_bytes']}B pxg1 "
          f"({codec['bytes_ratio']}x smaller), decode "
          f"{codec['json_decode_ms']}ms vs {codec['pxg1_decode_ms']}ms")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
