"""PR 1 benchmark: the incremental materialization engine vs the seed path.

Produces ``BENCH_pr1.json`` (repo root by default) with wall-times,
invocation counts and cache hit rates for four scenarios:

* ``e4_datalog_tc``   — materialize transitive closure of a chain (Ex. 3.2);
  incremental engine vs seed behaviour (perf flags off).  Target: ≥2×.
* ``e3_snapshot_growing`` — repeated snapshot evaluation of a join query
  over a growing relation document; per-site delta evaluation vs
  from-scratch re-evaluation.  Target: ≥2×.
* ``e2_confluence``   — Theorem 2.1 sanity: all schedulers and both engine
  modes terminate in the same system (canonical signatures collapse).
* ``e8_lazy``         — Section 4 sanity: lazy/eager answers unchanged by
  the incremental engine, with invocation counts recorded.

Run::

    PYTHONPATH=src python benchmarks/bench_pr1.py            # full
    PYTHONPATH=src python benchmarks/bench_pr1.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml import perf
from paxml.analysis import eager_evaluate, lazy_evaluate
from paxml.query import evaluate_snapshot, parse_query
from paxml.query.incremental import IncrementalQueryEvaluator
from paxml.system import RewritingEngine, materialize
from paxml.tree.node import label, val
from paxml.tree.reduction import antichain_insert, canonical_key
from paxml.tree.subsumption import forest_equivalent
from paxml.workloads import chain_edges, portal_system, random_edges, relation_tree, tc_system

from harness import timed, write_bench_json

JOIN2 = "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}"


def _engine_mode(incremental: bool) -> None:
    """Select incremental (flags on) or seed (flags off) behaviour."""
    perf.flags.set_all(incremental)
    perf.clear_caches()
    perf.stats.reset()


def bench_e4(chain_n: int) -> dict:
    def run(incremental):
        _engine_mode(incremental)
        system = tc_system(chain_edges(chain_n))
        seconds, outcome = timed(lambda: materialize(system, max_steps=1_000_000))
        keys = {name: canonical_key(doc.root)
                for name, doc in system.documents.items()}
        return seconds, outcome, keys, perf.stats.snapshot()

    t_inc, out_inc, keys_inc, stats = run(True)
    t_seed, out_seed, keys_seed, _ = run(False)
    return {
        "workload": f"TC(chain-{chain_n})",
        "incremental_seconds": round(t_inc, 4),
        "seed_seconds": round(t_seed, 4),
        "speedup": round(t_seed / t_inc, 2),
        "incremental_invocations": out_inc.steps,
        "seed_invocations": out_seed.steps,
        "cache_stats": stats,
        "cache_hit_rates": _hit_rates(stats),
        "documents_equivalent": keys_inc == keys_seed,
    }


def bench_e3(base_rows: int, batches: int, batch_rows: int) -> dict:
    total = base_rows + batches * batch_rows
    edges = random_edges(max(total // 2, 2), total, seed=3)
    query = parse_query(JOIN2)

    def grow(document, batch):
        start = base_rows + batch * batch_rows
        for a, b in edges[start:start + batch_rows]:
            document.add_child(
                label("t", label("c0", val(a)), label("c1", val(b))))

    # Seed path: full snapshot re-evaluation at every growth step.
    _engine_mode(False)
    document = relation_tree(edges[:base_rows])
    t_seed = 0.0
    for batch in range(batches + 1):
        if batch:
            grow(document, batch - 1)
        seconds, answers = timed(
            lambda: evaluate_snapshot(query, {"d": document}))
        t_seed += seconds
    final_full = list(answers)

    # Incremental path: per-site delta evaluation over the same growth.
    _engine_mode(True)
    document = relation_tree(edges[:base_rows])
    evaluator = IncrementalQueryEvaluator(query)
    accumulated = []
    t_inc = 0.0
    for batch in range(batches + 1):
        if batch:
            grow(document, batch - 1)
        seconds, delta = timed(
            lambda: evaluator.evaluate_delta({"d": document}, site="bench"))
        t_inc += seconds
        for tree in delta:
            antichain_insert(accumulated, tree)
    stats = perf.stats.snapshot()
    equivalent = forest_equivalent(accumulated, final_full)
    return {
        "workload": f"join2 over growing relation ({base_rows}→{total} rows, "
                    f"{batches + 1} evaluations)",
        "incremental_seconds": round(t_inc, 4),
        "seed_seconds": round(t_seed, 4),
        "speedup": round(t_seed / t_inc, 2),
        "evaluations": batches + 1,
        "answers": len(final_full),
        "cache_stats": stats,
        "cache_hit_rates": _hit_rates(stats),
        "answers_equivalent": equivalent,
    }


def bench_e2(chain_n: int) -> dict:
    schedules = [("round_robin", None, True), ("lifo", None, True),
                 ("random", 0, True), ("random", 1, True),
                 ("round_robin", None, False)]
    signatures = set()
    steps = {}
    for scheduler, seed, incremental in schedules:
        _engine_mode(incremental)
        system = tc_system(chain_edges(chain_n))
        result = RewritingEngine(system, scheduler=scheduler, seed=seed).run()
        signatures.add(frozenset(system.signature().items()))
        mode = "inc" if incremental else "seed"
        tag = f"{scheduler}{'' if seed is None else seed}-{mode}"
        steps[tag] = result.steps
    return {
        "workload": f"TC(chain-{chain_n}) under 4 schedules × 2 engine modes",
        "invocations": steps,
        "distinct_limits": len(signatures),
        "confluent": len(signatures) == 1,
    }


def bench_e8(cds: int, irrelevant: int) -> dict:
    ratings = parse_query(
        "res{title{$t}, rating{$r}} :- "
        "portal/directory{cd{title{$t}, rating{$r}}}")
    outcomes = {}
    answers = {}
    for mode, incremental in [("inc", True), ("seed", False)]:
        _engine_mode(incremental)
        base = portal_system(cds, n_irrelevant=irrelevant, seed=5)
        t_lazy, lazy = timed(lambda: lazy_evaluate(base.copy(), ratings))
        t_eager, eager = timed(lambda: eager_evaluate(base.copy(), ratings))
        eager_answer, eager_calls, _ = eager
        outcomes[mode] = {
            "lazy_seconds": round(t_lazy, 4),
            "eager_seconds": round(t_eager, 4),
            "lazy_invocations": lazy.invocations,
            "eager_invocations": eager_calls,
        }
        answers[mode] = (lazy.answer, eager_answer)
    equivalent = (answers["inc"][0].equivalent_to(answers["seed"][0])
                  and answers["inc"][1].equivalent_to(answers["seed"][1])
                  and answers["inc"][0].equivalent_to(answers["inc"][1]))
    return {
        "workload": f"portal({cds} cds + {irrelevant} promos) lazy vs eager",
        "modes": outcomes,
        "answers_equivalent": equivalent,
    }


def _hit_rates(stats: dict) -> dict:
    rates = {}
    for kind in ("subsumption", "canonical_key", "input_tree"):
        hits = stats.get(f"{kind}_hits", 0)
        misses = stats.get(f"{kind}_misses", 0)
        rates[kind] = round(hits / (hits + misses), 3) if hits + misses else None
    return rates


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI subset; skips the ≥2× assertions")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    out = args.out or os.path.join(root, "BENCH_pr1.json")

    if args.smoke:
        scenarios = {
            "e4_datalog_tc": bench_e4(chain_n=12),
            "e3_snapshot_growing": bench_e3(base_rows=30, batches=4,
                                            batch_rows=10),
            "e2_confluence": bench_e2(chain_n=6),
            "e8_lazy": bench_e8(cds=10, irrelevant=5),
        }
    else:
        scenarios = {
            "e4_datalog_tc": bench_e4(chain_n=32),
            "e3_snapshot_growing": bench_e3(base_rows=100, batches=10,
                                            batch_rows=20),
            "e2_confluence": bench_e2(chain_n=10),
            "e8_lazy": bench_e8(cds=20, irrelevant=10),
        }
    perf.flags.set_all(True)

    failures = []
    for name, scenario in scenarios.items():
        for check in ("documents_equivalent", "answers_equivalent", "confluent"):
            if scenario.get(check) is False:
                failures.append(f"{name}: {check} failed")
    if not args.smoke:
        for name in ("e4_datalog_tc", "e3_snapshot_growing"):
            if scenarios[name]["speedup"] < 2.0:
                failures.append(
                    f"{name}: speedup {scenarios[name]['speedup']}x < 2x")

    write_bench_json(out, scenarios)
    for name, scenario in scenarios.items():
        speed = (f" — {scenario['speedup']}x" if "speedup" in scenario else "")
        print(f"  {name}: ok{speed}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
