"""Shared row-printing helpers for the experiment benchmarks.

The paper is a theory paper — it publishes theorems, worked examples and
complexity bounds rather than measured tables — so each benchmark here
regenerates the computational content of one claim (see DESIGN.md §4 and
EXPERIMENTS.md) and prints its rows.  Run with ``-s`` to see them::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import List, Sequence

_WIDTH = 14


def print_table(title: str, header: Sequence[str],
                rows: List[Sequence[object]]) -> None:
    print(f"\n### {title}")
    line = " | ".join(str(h).ljust(_WIDTH) for h in header)
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(cell).ljust(_WIDTH) for cell in row))
