"""Shared row-printing helpers for the experiment benchmarks.

The paper is a theory paper — it publishes theorems, worked examples and
complexity bounds rather than measured tables — so each benchmark here
regenerates the computational content of one claim (see DESIGN.md §4 and
EXPERIMENTS.md) and prints its rows.  Run with ``-s`` to see them::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable, List, Sequence, Tuple

_WIDTH = 14


def print_table(title: str, header: Sequence[str],
                rows: List[Sequence[object]]) -> None:
    print(f"\n### {title}")
    line = " | ".join(str(h).ljust(_WIDTH) for h in header)
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(cell).ljust(_WIDTH) for cell in row))


# ----------------------------------------------------------------------
# machine-readable results (BENCH_pr1.json and successors)
# ----------------------------------------------------------------------


def timed(fn: Callable[[], object]) -> Tuple[float, object]:
    """Run ``fn`` once and return ``(wall_seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def timed_cpu(fn: Callable[[], object]) -> Tuple[float, object]:
    """Run ``fn`` once and return ``(cpu_seconds, result)``.

    Process CPU time, for single-threaded pure-compute workloads whose
    gate is a ratio: unlike wall-clock it does not charge the benchmark
    for time the container spent scheduled out.
    """
    start = time.process_time()
    result = fn()
    return time.process_time() - start, result


def write_bench_json(path: str, scenarios: dict) -> None:
    """Write one benchmark report as pretty JSON.

    ``scenarios`` maps scenario name to a dict of plain JSON values
    (wall-times, invocation counts, cache hit rates, pass/fail checks).
    A small machine header is added so runs remain comparable.
    """
    payload = {
        "machine": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "scenarios": scenarios,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
