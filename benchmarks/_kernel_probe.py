"""Timing probe shared by ``bench_pr5.py`` across source trees.

Runs PR 4's planned-mode ``e3`` (incremental join2 over a growing
relation) and ``e4`` (TC materialization) workloads and prints one JSON
line with the best-of-N wall times plus answer/step counts.  The probe
uses only APIs that exist since PR 4, so ``bench_pr5.py`` can execute it
twice with different ``PYTHONPATH``s — once against the current tree and
once against a git worktree of the commit that recorded
``BENCH_pr4.json`` — giving a same-session A/B instead of comparing
wall-clock numbers across machine states.

Usage::

    PYTHONPATH=<tree>/src python benchmarks/_kernel_probe.py \
        <base_rows> <batches> <batch_rows> <chain_n> <repeats>
"""

from __future__ import annotations

import json
import sys
import time

from paxml import perf
from paxml.query import parse_query
from paxml.query.incremental import IncrementalQueryEvaluator
from paxml.system import materialize
from paxml.tree.node import label, val
from paxml.tree.reduction import antichain_insert
from paxml.workloads import chain_edges, random_edges, relation_tree, tc_system

JOIN2 = "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}"


def _fresh() -> None:
    perf.flags.set_all(True)
    perf.clear_caches()
    perf.stats.reset()


def run_e3(base_rows: int, batches: int, batch_rows: int):
    total = base_rows + batches * batch_rows
    edges = random_edges(max(total // 2, 2), total, seed=3)
    query = parse_query(JOIN2)
    _fresh()
    document = relation_tree(edges[:base_rows])
    evaluator = IncrementalQueryEvaluator(query)
    accumulated = []
    elapsed = 0.0
    for batch in range(batches + 1):
        if batch:
            start = base_rows + (batch - 1) * batch_rows
            for a, b in edges[start:start + batch_rows]:
                document.add_child(
                    label("t", label("c0", val(a)), label("c1", val(b))))
        started = time.perf_counter()
        delta = evaluator.evaluate_delta({"d": document}, site="bench")
        elapsed += time.perf_counter() - started
        for tree in delta:
            antichain_insert(accumulated, tree)
    return elapsed, len(accumulated)


def run_e4(chain_n: int):
    _fresh()
    system = tc_system(chain_edges(chain_n))
    started = time.perf_counter()
    outcome = materialize(system, max_steps=1_000_000)
    elapsed = time.perf_counter() - started
    closure = sum(1 for node in system.documents["d1"].root.children
                  if node.marking.name == "t")
    return elapsed, outcome.steps, closure


def main() -> int:
    base_rows, batches, batch_rows, chain_n, repeats = map(int, sys.argv[1:6])
    e3_runs = [run_e3(base_rows, batches, batch_rows) for _ in range(repeats)]
    e4_runs = [run_e4(chain_n) for _ in range(repeats)]
    e3_best = min(e3_runs)
    e4_best = min(e4_runs)
    print(json.dumps({
        "e3_seconds": round(e3_best[0], 4),
        "e3_answers": e3_best[1],
        "e4_seconds": round(e4_best[0], 4),
        "e4_invocations": e4_best[1],
        "e4_closure_edges": e4_best[2],
    }))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
