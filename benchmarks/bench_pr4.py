"""PR 4 benchmark: the query planner + marking indexes vs the PR 1 engine.

Produces ``BENCH_pr4.json`` (repo root by default).  Both sides of every
comparison run with the PR 1 incremental machinery ON (persistent
subsumption cache, canonical-key cache, delta matching); the knobs under
test are ``perf.flags.query_planner`` and ``perf.flags.child_index``:

* ``e3_join_probe``  — per-site delta evaluation of the join2 query over
  a growing relation: compiled plan + value-probe index vs the PR 1
  naive join.  Target: ≥2×.
* ``e4_datalog_tc``  — materializing transitive closure of a chain:
  planned matching + marking-set subsumption pruning vs PR 1.
  Target: ≥2×.
* ``index_overhead`` — the maintenance bill: time spent inside
  ``note_graft`` (the graft path's index patching) as a fraction of
  total graft time on a graft-heavy run.  Target: <5%.

Run::

    PYTHONPATH=src python benchmarks/bench_pr4.py            # full
    PYTHONPATH=src python benchmarks/bench_pr4.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml import perf
from paxml.query import parse_query
from paxml.query.incremental import IncrementalQueryEvaluator
from paxml.system import materialize
from paxml.system import invocation
from paxml.tree import index as tree_index
from paxml.tree.node import label, val
from paxml.tree.reduction import antichain_insert, canonical_key
from paxml.tree.subsumption import forest_equivalent
from paxml.workloads import chain_edges, random_edges, relation_tree, tc_system

from harness import timed, write_bench_json

JOIN2 = "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}"


def _mode(planner: bool) -> None:
    """PR 1 baseline (planner/index off) vs PR 4 (everything on)."""
    perf.flags.set_all(True)
    perf.flags.query_planner = planner
    perf.flags.child_index = planner
    perf.clear_caches()
    perf.stats.reset()


def _plan_stats(stats: dict) -> dict:
    keys = ("plan_compilations", "planned_evaluations",
            "planned_delta_evaluations", "const_subpattern_tests",
            "index_hits", "index_misses", "index_graft_patches",
            "probe_lookups", "subsumption_early_rejects")
    picked = {key: stats[key] for key in keys}
    lookups = stats["index_hits"] + stats["index_misses"]
    picked["index_hit_rate"] = (
        round(stats["index_hits"] / lookups, 3) if lookups else None)
    return picked


def bench_e3(base_rows: int, batches: int, batch_rows: int) -> dict:
    total = base_rows + batches * batch_rows
    edges = random_edges(max(total // 2, 2), total, seed=3)
    query = parse_query(JOIN2)

    def grow(document, batch):
        start = base_rows + batch * batch_rows
        for a, b in edges[start:start + batch_rows]:
            document.add_child(
                label("t", label("c0", val(a)), label("c1", val(b))))

    def run(planner):
        _mode(planner)
        document = relation_tree(edges[:base_rows])
        evaluator = IncrementalQueryEvaluator(query)
        accumulated = []
        elapsed = 0.0
        for batch in range(batches + 1):
            if batch:
                grow(document, batch - 1)
            seconds, delta = timed(
                lambda: evaluator.evaluate_delta({"d": document},
                                                 site="bench"))
            elapsed += seconds
            for tree in delta:
                antichain_insert(accumulated, tree)
        return elapsed, accumulated, perf.stats.snapshot()

    t_base, answers_base, _ = run(False)
    t_plan, answers_plan, stats = run(True)
    return {
        "workload": f"join2 over growing relation ({base_rows}→{total} rows, "
                    f"{batches + 1} delta evaluations)",
        "baseline_seconds": round(t_base, 4),
        "planned_seconds": round(t_plan, 4),
        "speedup": round(t_base / t_plan, 2),
        "answers": len(answers_plan),
        "plan_stats": _plan_stats(stats),
        "answers_equivalent": forest_equivalent(answers_plan, answers_base),
    }


def bench_e4(chain_n: int) -> dict:
    def run(planner):
        _mode(planner)
        system = tc_system(chain_edges(chain_n))
        seconds, outcome = timed(
            lambda: materialize(system, max_steps=1_000_000))
        keys = {name: canonical_key(doc.root)
                for name, doc in system.documents.items()}
        return seconds, outcome, keys, perf.stats.snapshot()

    t_base, out_base, keys_base, _ = run(False)
    t_plan, out_plan, keys_plan, stats = run(True)
    return {
        "workload": f"TC(chain-{chain_n}) materialization",
        "baseline_seconds": round(t_base, 4),
        "planned_seconds": round(t_plan, 4),
        "speedup": round(t_base / t_plan, 2),
        "baseline_invocations": out_base.steps,
        "planned_invocations": out_plan.steps,
        "plan_stats": _plan_stats(stats),
        "documents_equivalent": keys_plan == keys_base,
    }


def bench_index_overhead(chain_n: int) -> dict:
    """Time inside ``note_graft`` as a fraction of total graft time.

    The graft path is instrumented directly (a timing shim around
    ``note_graft``) on a full planned TC run, so the figure is the true
    maintenance bill of keeping the index consistent — not a proxy.
    """
    _mode(True)
    real_note_graft = tree_index.note_graft
    maintenance = [0.0]

    def timed_note_graft(parent, inserted):
        start = time.perf_counter()
        real_note_graft(parent, inserted)
        maintenance[0] += time.perf_counter() - start

    graft_time = [0.0]
    real_graft = invocation.graft_answers

    def timed_graft(path, answers):
        start = time.perf_counter()
        result = real_graft(path, answers)
        graft_time[0] += time.perf_counter() - start
        return result

    # invoke() resolves both names through their modules at call time, so
    # rebinding the module attributes is enough to intercept the real path.
    invocation.tree_index.note_graft = timed_note_graft
    invocation.graft_answers = timed_graft
    try:
        system = tc_system(chain_edges(chain_n))
        materialize(system, max_steps=1_000_000)
    finally:
        invocation.tree_index.note_graft = real_note_graft
        invocation.graft_answers = real_graft
    fraction = maintenance[0] / graft_time[0] if graft_time[0] else 0.0
    return {
        "workload": f"TC(chain-{chain_n}) graft path, index patching timed",
        "graft_seconds": round(graft_time[0], 4),
        "maintenance_seconds": round(maintenance[0], 5),
        "maintenance_fraction": round(fraction, 4),
        "graft_patches": perf.stats.index_graft_patches,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI subset; skips the ≥2× and <5% "
                             "assertions")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    out = args.out or os.path.join(root, "BENCH_pr4.json")

    if args.smoke:
        scenarios = {
            "e3_join_probe": bench_e3(base_rows=30, batches=4, batch_rows=10),
            "e4_datalog_tc": bench_e4(chain_n=12),
            "index_overhead": bench_index_overhead(chain_n=10),
        }
    else:
        scenarios = {
            "e3_join_probe": bench_e3(base_rows=100, batches=10,
                                      batch_rows=20),
            "e4_datalog_tc": bench_e4(chain_n=32),
            "index_overhead": bench_index_overhead(chain_n=24),
        }
    perf.flags.set_all(True)

    failures = []
    for name, scenario in scenarios.items():
        for check in ("documents_equivalent", "answers_equivalent"):
            if scenario.get(check) is False:
                failures.append(f"{name}: {check} failed")
    if not args.smoke:
        for name in ("e3_join_probe", "e4_datalog_tc"):
            if scenarios[name]["speedup"] < 2.0:
                failures.append(
                    f"{name}: speedup {scenarios[name]['speedup']}x < 2x")
        fraction = scenarios["index_overhead"]["maintenance_fraction"]
        if fraction >= 0.05:
            failures.append(
                f"index_overhead: maintenance {fraction:.1%} of graft "
                f"time ≥ 5%")

    write_bench_json(out, scenarios)
    for name, scenario in scenarios.items():
        extra = (f" — {scenario['speedup']}x" if "speedup" in scenario
                 else f" — {scenario['maintenance_fraction']:.2%} of graft "
                      f"time")
        print(f"  {name}: ok{extra}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
