"""PR 8 benchmark: causal-tracing overhead on the serving layer.

Produces ``BENCH_pr8.json`` (repo root by default).  One scenario, the
PR 7 ``many_tenants`` fleet (≥100 :class:`TenantSession`\\ s driven to
their fixpoints through admission leases), run in four tracing modes:

* ``off``       — ``perf.flags.tracing`` disabled (the kill switch);
* ``unsampled`` — tracing enabled, head-sampling rate 0: every slice
  pays the real unsampled path (one ``admit`` returning ``None``, one
  ``ContextVar.get`` per graft, one dict probe per invocation);
* ``sampled``   — the default 10 % head-sampling rate: sampled slices
  run under an active :class:`~paxml.obs.trace.TraceContext`, so their
  grafts are stamped, call sites tagged, and invocation spans emitted
  to an attached flight recorder;
* ``full``      — 100 % sampling (reported, not gated).

Each traced mode is measured back-to-back with its own fresh ``off``
baseline (process-CPU seconds, GC parked during the timed region) and
the minimum paired ratio across rounds is gated::

    min over rounds (unsampled / off) - 1  ≤  UNSAMPLED_GATE  (1 %)
    min over rounds (sampled   / off) - 1  ≤  SAMPLED_GATE    (5 %)

Run::

    PYTHONPATH=src python benchmarks/bench_pr8.py            # full
    PYTHONPATH=src python benchmarks/bench_pr8.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml import perf
from paxml.obs import trace as obs_trace
from paxml.obs.flight import FlightRecorder
from paxml.serve import AdmissionController, TenantBudget, TenantSession
from paxml.workloads import random_edges, tc_system

from harness import write_bench_json

UNSAMPLED_GATE = 0.01   # tracing on, nothing sampled: ≤1% CPU overhead
SAMPLED_GATE = 0.05     # default 10% head sampling: ≤5% CPU overhead
DEFAULT_RATE = 0.1


def _run_once(n_tenants: int, mode: str, rate: float,
              slice_attempts: int = 32) -> dict:
    perf.flags.tracing = mode != "off"
    obs_trace.seed_sampler(1234)
    flight = FlightRecorder(256)
    obs_trace.subscribe_spans(flight.record_span)
    sessions = {}
    control = AdmissionController(TenantBudget(slice_attempts=slice_attempts))
    for i in range(n_tenants):
        name = f"tenant{i:03d}"
        sessions[name] = TenantSession(
            name, tc_system(random_edges(4, 5 + i % 3, seed=i)))
        control.register(name)

    async def drive() -> int:
        slices = 0
        while True:
            now = asyncio.get_event_loop().time()
            tenant = control.next_tenant(
                lambda name: sessions[name].runnable_at(now))
            if tenant is None:
                if not any(s.has_work() for s in sessions.values()):
                    return slices
                await asyncio.sleep(0.001)
                continue
            session = sessions[tenant]
            before = session.kernel.scheduler.attempts
            # One head-sampling decision per admission slice — the same
            # choke point a server request passes through.
            ctx = (obs_trace.admit(tenant, rate=rate)
                   if mode != "off" else None)
            token = obs_trace.activate(ctx) if ctx is not None else None
            started = time.perf_counter() if ctx is not None else 0.0
            try:
                await session.run_slice(control.lease(tenant))
            finally:
                if token is not None:
                    obs_trace.restore(token)
                    # The per-request op span a server emits for every
                    # sampled admission (grafts inside were stamped with
                    # the same context by the kernel).
                    obs_trace.emit_span(ctx, f"slice:{tenant}", started,
                                        time.perf_counter())
            control.settle(tenant,
                           session.kernel.scheduler.attempts - before)
            slices += 1

    try:
        # Collect the previous run's garbage *outside* the timed region
        # and keep the collector quiet *inside* it — cyclic-GC pauses
        # land on random runs and would drown a 1% gate.
        gc.collect()
        gc.disable()
        cpu_start = time.process_time()
        slices = asyncio.run(drive())
        cpu = time.process_time() - cpu_start
    finally:
        gc.enable()
        obs_trace.unsubscribe_spans(flight.record_span)
        perf.flags.tracing = True

    grafts = sum(s.kernel.productive for s in sessions.values())
    return {
        "mode": mode,
        "rate": rate,
        "tenants": n_tenants,
        "slices": slices,
        "grafts": grafts,
        "cpu_seconds": round(cpu, 4),
        "spans_recorded": flight.recorded,
        "all_fixpoints_reached": all(not s.has_work()
                                     for s in sessions.values()),
    }


#: traced mode name → head-sampling rate for that mode.
TRACED_MODES = (("unsampled", 0.0), ("sampled", DEFAULT_RATE),
                ("full", 1.0))


def bench_all(n_tenants: int, rounds: int) -> dict:
    """Paired-ratio measurement of tracing overhead.

    Machine noise on a shared runner dwarfs a 1% effect, so a ratio of
    independently-taken minima is meaningless.  Instead each round runs
    every traced mode back-to-back with its *own* fresh ``off``
    baseline; slowly-varying load cancels inside the adjacent pair, and
    taking the **minimum ratio** across rounds discards rounds where a
    burst landed on just one side of a pair."""
    _run_once(n_tenants, "off", 0.0)   # warm-up: imports, caches
    best: dict = {"off": None}
    ratios: dict = {}
    for _ in range(rounds):
        for mode, rate in TRACED_MODES:
            base = _run_once(n_tenants, "off", 0.0)
            result = _run_once(n_tenants, mode, rate)
            if best["off"] is None or \
                    base["cpu_seconds"] < best["off"]["cpu_seconds"]:
                best["off"] = base
            held = best.get(mode)
            if held is None or result["cpu_seconds"] < held["cpu_seconds"]:
                best[mode] = result
            if base["cpu_seconds"]:
                ratio = result["cpu_seconds"] / base["cpu_seconds"] - 1.0
                if mode not in ratios or ratio < ratios[mode]:
                    ratios[mode] = ratio
    for entry in best.values():
        entry["rounds"] = rounds
    best["off"].setdefault("overhead", 0.0)
    for mode, _ in TRACED_MODES:
        best[mode]["overhead"] = round(ratios.get(mode, 0.0), 4)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: fewer tenants and repeats")
    parser.add_argument("--out", default=None,
                        help="output path (default: repo-root BENCH_pr8.json)")
    args = parser.parse_args(argv)
    out = args.out or os.path.join(os.path.dirname(__file__), os.pardir,
                                   "BENCH_pr8.json")
    n_tenants = 100 if args.smoke else 120
    rounds = 2 if args.smoke else 3

    modes = bench_all(n_tenants, rounds)
    overheads = {name: entry["overhead"] for name, entry in modes.items()}
    scenarios = {
        "tracing_overhead": {
            "modes": modes,
            "overhead_vs_off": overheads,
            "unsampled_gate": UNSAMPLED_GATE,
            "sampled_gate": SAMPLED_GATE,
        }
    }

    failures = []
    for name, entry in modes.items():
        if not entry["all_fixpoints_reached"]:
            failures.append(f"{name}: a tenant failed to reach fixpoint")
    if modes["sampled"]["spans_recorded"] == 0:
        failures.append("sampled: no spans recorded — the sampled mode "
                        "is not actually tracing")
    if overheads["unsampled"] is not None and \
            overheads["unsampled"] > UNSAMPLED_GATE:
        failures.append(
            f"unsampled tracing overhead {overheads['unsampled']:.2%} "
            f"> {UNSAMPLED_GATE:.0%}")
    if overheads["sampled"] is not None and \
            overheads["sampled"] > SAMPLED_GATE:
        failures.append(
            f"sampled tracing overhead {overheads['sampled']:.2%} "
            f"> {SAMPLED_GATE:.0%}")

    write_bench_json(out, scenarios)
    for name in ("off", "unsampled", "sampled", "full"):
        entry = modes[name]
        print(f"  {name:>9}: cpu {entry['cpu_seconds']}s  "
              f"overhead {overheads[name]:+.2%}  "
              f"spans {entry['spans_recorded']}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
