"""PR 10 benchmark: relevance-guided lazy scheduling.

Produces ``BENCH_pr10.json`` (repo root by default).  Two scenarios:

* ``lazy_speedup`` — the portal workload at a realistic skew: a modest
  directory of CDs (some needing ``!GetRating``) next to a large promos
  branch of ``!FreeMusicDB`` calls a ratings query never needs.  The
  eager run drives every call to the full fixpoint ``[I]``; the lazy
  run (``materialize(..., lazy_for=[q])``) parks the promos branch
  dormant and stabilizes once the weakly relevant sites quiesce.  Both
  states are evaluated under the registered query and the answer
  forests asserted equal — laziness must be invisible in the answers.
  Metric: process CPU time (the container may be scheduled out; the
  claim is about work not done, not wall luck).  Gate: lazy ≥3× faster
  (full run; the smoke subset reports but gates at 1.5×).

* ``fire_once`` — the same workload under the fire-once retirement
  policy (acyclic services retire after one complete invocation): total
  scheduler attempts eager vs fire-once, answer forests asserted equal.
  Reported, not gated — the attempt reduction is the observable.

Run::

    PYTHONPATH=src python benchmarks/bench_pr10.py            # full
    PYTHONPATH=src python benchmarks/bench_pr10.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml.query import evaluate_snapshot, parse_query
from paxml.system import materialize
from paxml.workloads import portal_system

from harness import timed_cpu, write_bench_json

LAZY_GATE = 3.0
LAZY_GATE_SMOKE = 1.5

RATING_QUERY = ("res{title{$t}, rating{$r}} :- "
                "portal/directory{cd{title{$t}, rating{$r}}}")


def _answer_keys(system, query):
    return evaluate_snapshot(
        query, {name: doc.root for name, doc in system.documents.items()}
    ).canonical_keys()


def bench_lazy(n_cds: int, n_irrelevant: int, trials: int) -> dict:
    query = parse_query(RATING_QUERY)

    def build():
        return portal_system(n_cds, materialized_fraction=0.5,
                             n_irrelevant=n_irrelevant, seed=11)

    eager_cpu, lazy_cpu = [], []
    eager_steps = lazy_steps = 0
    for _ in range(trials):
        eager = build()
        seconds, result = timed_cpu(lambda: materialize(eager))
        assert result.terminated
        eager_cpu.append(seconds)
        eager_steps = result.steps
        reference = _answer_keys(eager, query)

        lazy = build()
        seconds, result = timed_cpu(
            lambda: materialize(lazy, lazy_for=[query]))
        assert result.terminated
        lazy_cpu.append(seconds)
        lazy_steps = result.steps
        assert _answer_keys(lazy, query) == reference, (
            "lazy answer forest diverged from the eager oracle")

    # One instrumented run for the frontier shape (outside the timings).
    from paxml.system import RewritingEngine
    shape = build()
    engine = RewritingEngine(shape, lazy_for=[query])
    engine.run()
    scheduler = engine.kernel.scheduler

    best_eager, best_lazy = min(eager_cpu), min(lazy_cpu)
    return {
        "n_cds": n_cds,
        "n_irrelevant": n_irrelevant,
        "trials": trials,
        "eager_cpu_s": round(best_eager, 4),
        "lazy_cpu_s": round(best_lazy, 4),
        "speedup": round(best_eager / best_lazy, 3) if best_lazy else None,
        "eager_steps": eager_steps,
        "lazy_steps": lazy_steps,
        "dormant_sites": scheduler.dormant_count(),
        "calls_skipped": scheduler.skipped_unneeded,
        "answers_equal": True,      # asserted above
    }


def bench_fire_once(n_cds: int, n_irrelevant: int) -> dict:
    query = parse_query(RATING_QUERY)

    def build():
        return portal_system(n_cds, materialized_fraction=0.2,
                             n_irrelevant=n_irrelevant, seed=13)

    from paxml.system import RewritingEngine
    eager = build()
    eager_engine = RewritingEngine(eager)
    assert eager_engine.run().terminated
    reference = _answer_keys(eager, query)

    once = build()
    once_engine = RewritingEngine(once, fire_once=True)
    assert once_engine.run().terminated
    assert _answer_keys(once, query) == reference, (
        "fire-once answer forest diverged from the eager oracle")

    return {
        "eager_invocations": eager_engine.kernel.steps,
        "fire_once_invocations": once_engine.kernel.steps,
        "retired_sites": once_engine.kernel.scheduler.retired_count(),
        "answers_equal": True,      # asserted above
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: smaller workload, relaxed gate")
    parser.add_argument("--out", default=None,
                        help="output path (default: repo-root "
                             "BENCH_pr10.json)")
    args = parser.parse_args(argv)
    out = args.out or os.path.join(os.path.dirname(__file__), os.pardir,
                                   "BENCH_pr10.json")

    if args.smoke:
        lazy = bench_lazy(n_cds=12, n_irrelevant=120, trials=1)
        fire = bench_fire_once(n_cds=10, n_irrelevant=20)
        gate = LAZY_GATE_SMOKE
    else:
        lazy = bench_lazy(n_cds=30, n_irrelevant=600, trials=3)
        fire = bench_fire_once(n_cds=20, n_irrelevant=60)
        gate = LAZY_GATE

    lazy["gate"] = gate
    scenarios = {"lazy_speedup": lazy, "fire_once": fire}

    failures = []
    if lazy["speedup"] is None or lazy["speedup"] < gate:
        failures.append(
            f"lazy_speedup: {lazy['speedup']}× below the {gate}× gate")
    if fire["fire_once_invocations"] > fire["eager_invocations"]:
        failures.append("fire_once: retirement increased invocations")

    scenarios["pass"] = not failures
    scenarios["failures"] = failures
    write_bench_json(out, scenarios)
    for name in ("lazy_speedup", "fire_once"):
        print(f"{name}: {scenarios[name]}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"pass (lazy {lazy['speedup']}× ≥ {gate}×)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
