"""Microbenchmark: object-set vs packed-bitset subsumption filtering.

Isolates the one kernel PR 6 rewrote — maintaining an antichain of
pairwise-incomparable trees under a stream of candidate inserts — from
everything else the engines do.  The object path is PR 1's
``antichain_insert`` (a linear scan calling ``is_subsumed`` per kept
tree); the bitset path is :class:`paxml.tree.antichain.BitsetAntichain`
(posting lists over packed subtree marking bitsets; a candidate is only
compared against kept trees whose bitsets don't already refute the
comparison).  Both paths insert structurally identical tree streams and
must keep identical antichains.

Prints one JSON line::

    PYTHONPATH=src python benchmarks/_subsumption_probe.py [trees] [repeats]
"""

from __future__ import annotations

import json
import sys
import time

from paxml import perf
from paxml.tree import store as tree_store
from paxml.tree.antichain import BitsetAntichain
from paxml.tree.reduction import antichain_insert, canonical_key
from paxml.tree.node import label, val


def _stream(n_trees: int):
    """A graft-shaped candidate stream: keyed relation rows (the engines'
    dominant answer shape), with every key seen ~twice so duplicates drop,
    and periodic wider rows so eviction fires too."""
    keys = max(n_trees // 2, 1)
    trees = []
    for i in range(n_trees):
        row = label("row", label("k", val(i % keys)),
                    label("v", val((i * 7) % 50)))
        if i % 7 == 3:
            # a dominator: the same row plus an extra child evicts the
            # plain row once both have been seen
            row.add_child(label("w", val(i % 5)))
        trees.append(row)
    return trees


def run_object(trees) -> tuple:
    kept = []
    start = time.perf_counter()
    for tree in trees:
        antichain_insert(kept, tree)
    return time.perf_counter() - start, kept


def run_bitset(trees) -> tuple:
    index = BitsetAntichain()
    start = time.perf_counter()
    for tree in trees:
        index.insert(tree)
    return time.perf_counter() - start, list(index)


def main() -> int:
    n_trees = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    repeats = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    perf.flags.set_all(True)
    best_obj = best_bit = None
    kept_obj = kept_bit = None
    for _ in range(repeats):
        perf.clear_caches()
        perf.stats.reset()
        # fresh structurally-identical streams per side: inserts mutate
        # nothing, but cached canonical keys must not leak across sides
        t_obj, kept_obj = run_object(_stream(n_trees))
        t_bit, kept_bit = run_bitset(_stream(n_trees))
        best_obj = t_obj if best_obj is None else min(best_obj, t_obj)
        best_bit = t_bit if best_bit is None else min(best_bit, t_bit)

    keys = lambda ts: sorted(str(canonical_key(t)) for t in ts)
    report = {
        "trees": n_trees,
        "repeats": repeats,
        "object_seconds": round(best_obj, 4),
        "bitset_seconds": round(best_bit, 4),
        "speedup": round(best_obj / best_bit, 2),
        "kept": len(kept_bit),
        "antichains_equal": keys(kept_obj) == keys(kept_bit),
        "bitset_rejects": perf.stats.bitset_rejects,
        "store_rows": tree_store.store_sizes()["rows"],
    }
    print(json.dumps(report))
    return 0 if report["antichains_equal"] else 1


if __name__ == "__main__":
    sys.exit(main())
