"""Benchmark-suite configuration: keep the full harness fast.

The experiments care about *shape* (scaling trends, who wins), not about
microsecond precision, so rounds are capped aggressively; individual
benchmarks still report min/mean/stddev.
"""


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["suite"] = "paxml experiments E1–E12"


def pytest_addoption(parser):
    pass


def pytest_configure(config):
    # Cap calibration: each benchmark runs a handful of rounds at most.
    if hasattr(config.option, "benchmark_min_rounds"):
        config.option.benchmark_min_rounds = 3
    if hasattr(config.option, "benchmark_max_time"):
        config.option.benchmark_max_time = 0.25
    if hasattr(config.option, "benchmark_warmup"):
        config.option.benchmark_warmup = "off"
