"""E7 — Lemma 3.1: the Turing-machine simulation.

Rows: per machine and input length — native TM configurations vs AXML
configuration trees (must match exactly), AXML invocation count, and both
runtimes.  Shape: AXML invocations scale with the number of TM steps
(each productive step derives one configuration tree), with the
tree-encoding overhead growing with tape length.
"""

import time

import pytest

from paxml.turing import anbn_recognizer, parity_checker, run, simulate, unary_successor

from .harness import print_table

CASES = [
    ("unary+1", unary_successor, ["1", "111", "11111"]),
    ("parity", parity_checker, ["11", "1111", "111111"]),
    ("anbn", anbn_recognizer, ["ab", "aabb", "aaabbb"]),
]


@pytest.mark.parametrize("word", ["ab", "aabb"])
def test_anbn_simulation_cost(benchmark, word):
    machine = anbn_recognizer()
    benchmark.group = "E7 a^n b^n via AXML"
    benchmark.name = f"input={word}"
    benchmark(lambda: simulate(machine, word))


@pytest.mark.parametrize("word", ["ab", "aabb"])
def test_anbn_native_cost(benchmark, word):
    machine = anbn_recognizer()
    benchmark.group = "E7 a^n b^n native"
    benchmark.name = f"input={word}"
    benchmark(lambda: run(machine, word))


def test_e7_rows(benchmark):
    rows = []
    for name, factory, words in CASES:
        machine = factory()
        for word in words:
            start = time.perf_counter()
            native = run(machine, word)
            t_native = time.perf_counter() - start
            start = time.perf_counter()
            sim = simulate(machine, word)
            t_axml = time.perf_counter() - start
            match = sim.configurations == {c.normalized()
                                           for c in native.visited}
            assert match and sim.accepted == native.accepted, (name, word)
            rows.append((f"{name}({word})",
                         "acc" if native.accepted else "rej",
                         len(native.visited), sim.steps,
                         f"{t_native * 1e3:.2f} ms",
                         f"{t_axml * 1e3:.1f} ms", match))
    print_table("E7: TM simulation by positive AXML (Lemma 3.1)",
                ["machine(input)", "verdict", "TM cfgs", "AXML calls",
                 "native", "AXML", "cfgs match"], rows)
    benchmark(lambda: None)
