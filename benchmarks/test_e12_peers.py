"""E12 — Section 6: distributed (P2P) evaluation, pull vs push.

Rows: a portal peer plus k backend peers, each hosting a slice of the
ratings database; the run drives all remote calls to quiescence in both
delivery modes.  Shape: both modes converge to the same document; push
needs fewer messages (calls are activated once, answers re-sent only on
change), and message counts grow with the number of embedded calls.
"""

import time

import pytest

from paxml.peers import Mode, Network, Peer
from paxml.query import parse_query
from paxml.tree import to_canonical

from .harness import print_table


def build_network(n_cds: int, n_backends: int):
    portal = Peer("portal")
    cds = ", ".join(
        f'cd{{title{{"song-{i}"}}, !GetRating{i % n_backends}{{"song-{i}"}}}}'
        for i in range(n_cds)
    )
    portal.add_document("directory", f"directory{{{cds}}}")
    backends = []
    for b in range(n_backends):
        backend = Peer(f"backend-{b}")
        entries = ", ".join(
            f'entry{{song{{"song-{i}"}}, stars{{"{1 + i % 5}"}}}}'
            for i in range(b, n_cds, n_backends)
        )
        backend.add_document(f"ratingsdb{b}", f"db{{{entries}}}")
        backend.offer_service((
            f"GetRating{b}",
            f'rating{{$s}} :- input/input{{$t}}, '
            f'ratingsdb{b}/db{{entry{{song{{$t}}, stars{{$s}}}}}}',
        ))
        backends.append(backend)
    return portal, backends


SWEEP = [(6, 2), (12, 3), (24, 4)]


@pytest.mark.parametrize("mode", [Mode.PULL, Mode.PUSH])
def test_distributed_run_cost(benchmark, mode):
    benchmark.group = "E12 distributed run (12 cds, 3 peers)"
    benchmark.name = mode.value

    def once():
        portal, backends = build_network(12, 3)
        network = Network([portal] + backends, mode=mode, seed=1)
        return network.run()

    benchmark(once)


def test_e12_rows(benchmark):
    rows = []
    query = parse_query(
        'r{title{$t}, stars{$s}} :- directory/directory{cd{title{$t}, rating{$s}}}'
    )
    for n_cds, n_backends in SWEEP:
        states = {}
        for mode in (Mode.PULL, Mode.PUSH):
            portal, backends = build_network(n_cds, n_backends)
            network = Network([portal] + backends, mode=mode, seed=7)
            start = time.perf_counter()
            stats = network.run()
            elapsed = time.perf_counter() - start
            rated = len(portal.snapshot_query(query))
            states[mode] = (to_canonical(portal.documents["directory"].root),
                            stats.messages_delivered, rated, elapsed)
            assert network.quiescent()
            assert rated == n_cds  # every cd got its rating
        assert states[Mode.PULL][0] == states[Mode.PUSH][0], "modes diverged"
        assert states[Mode.PUSH][1] <= states[Mode.PULL][1]
        rows.append((f"{n_cds} cds / {n_backends} peers",
                     states[Mode.PULL][1], states[Mode.PUSH][1],
                     states[Mode.PULL][2],
                     f"{states[Mode.PULL][3] * 1e3:.1f} ms",
                     f"{states[Mode.PUSH][3] * 1e3:.1f} ms"))
    print_table("E12: P2P evaluation, pull vs push (Section 6)",
                ["network", "pull msgs", "push msgs", "rated",
                 "pull time", "push time"], rows)
    benchmark(lambda: None)
