"""PR 2 benchmark: the concurrent async runtime vs sequential rewriting.

Produces ``BENCH_pr2.json`` (repo root by default) with three scenarios:

* ``slow_service_fanout`` — the jazz portal with every rating left
  intensional and a simulated per-call service latency: many independent
  call sites, the concurrency sweet spot.  Sequential rewriting pays the
  latency serially (services wrapped with a blocking sleep); the async
  runtime keeps a window of calls in flight.  Target: ≥2× wall-clock at
  concurrency 8, result equivalence enforced.
* ``slow_service_chain`` — transitive closure of a chain under latency:
  heavily data-dependent, so concurrency is bounded by the dependency
  depth; records the honest (smaller) speedup.
* ``fault_overhead`` — the fan-out workload with deterministic fault
  injection (drops, transient errors, delays, duplicates on early
  attempts): what retries and timeouts cost on top of a clean run, with
  the no-silent-loss accounting check.

Run::

    PYTHONPATH=src python benchmarks/bench_pr2.py            # full
    PYTHONPATH=src python benchmarks/bench_pr2.py --smoke    # CI subset
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from paxml.runtime import (
    AsyncRuntime,
    FaultInjector,
    LocalTransport,
    RuntimeConfig,
)
from paxml.system import materialize
from paxml.system.service import BlackBoxService
from paxml.workloads import chain_edges, portal_system, tc_system

from harness import timed, write_bench_json


def with_blocking_latency(system, latency: float):
    """Wrap every service so each invocation sleeps ``latency`` seconds.

    This is what "sequential rewriting on a slow-service workload" means:
    the classic engine invokes one call at a time and pays the full
    round-trip for each, exactly as if the services were remote.
    """
    for name, service in list(system.services.items()):
        def make(inner):
            def fn(environment):
                time.sleep(latency)
                return inner.evaluate(environment)
            return fn
        system.services[name] = BlackBoxService(
            name, make(service),
            reads=service.reads_documents(),
            emits=service.emits_functions())
    return system


def run_concurrent(build, latency: float, concurrency: int,
                   injector=None, **config_kwargs):
    system = build()
    transport = LocalTransport(system, latency=latency)
    config = RuntimeConfig(concurrency=concurrency, seed=0, **config_kwargs)
    runtime = AsyncRuntime(system, transport=transport, config=config,
                           injector=injector)
    seconds, result = timed(runtime.run)
    return seconds, result, system


def bench_slow_fanout(n_cds: int, latency: float, window: int) -> dict:
    def build():
        return portal_system(n_cds, materialized_fraction=0.0,
                             n_irrelevant=max(n_cds // 4, 2), seed=0)

    reference = build()
    materialize(reference)  # latency-free fixpoint for the equivalence check

    sequential = with_blocking_latency(build(), latency)
    t_seq, out_seq = timed(lambda: materialize(sequential, max_steps=100_000))

    sweep = {}
    equivalent = True
    result_at_window = None
    for concurrency in (1, 2, 4, window):
        t_conc, result, system = run_concurrent(build, latency, concurrency)
        sweep[f"concurrency_{concurrency}_seconds"] = round(t_conc, 4)
        equivalent = equivalent and reference.equivalent_to(system)
        if concurrency == window:
            result_at_window = (t_conc, result)
    t_win, result = result_at_window
    return {
        "workload": f"portal({n_cds} intensional ratings), "
                    f"{latency * 1000:.0f}ms per call",
        "sequential_seconds": round(t_seq, 4),
        "sequential_invocations": out_seq.steps,
        **sweep,
        "speedup_at_concurrency_8": round(t_seq / t_win, 2),
        "target_speedup": 2.0,
        "meets_target": t_seq / t_win >= 2.0,
        "concurrent_invocations": result.invocations,
        "concurrent_attempts": result.attempts,
        "in_flight_peak": result.metrics.in_flight_peak,
        "documents_equivalent": equivalent,
    }


def bench_slow_chain(chain_n: int, latency: float, window: int) -> dict:
    def build():
        return tc_system(chain_edges(chain_n))

    reference = build()
    materialize(reference)

    sequential = with_blocking_latency(build(), latency)
    t_seq, out_seq = timed(lambda: materialize(sequential, max_steps=100_000))
    t_conc, result, system = run_concurrent(build, latency, window)
    return {
        "workload": f"TC(chain-{chain_n}), {latency * 1000:.0f}ms per call "
                    "(dependency-bounded)",
        "sequential_seconds": round(t_seq, 4),
        "sequential_invocations": out_seq.steps,
        f"concurrency_{window}_seconds": round(t_conc, 4),
        "speedup": round(t_seq / t_conc, 2),
        "concurrent_invocations": result.invocations,
        "documents_equivalent": reference.equivalent_to(system),
    }


def bench_fault_overhead(n_cds: int, latency: float, window: int) -> dict:
    def build():
        return portal_system(n_cds, materialized_fraction=0.0,
                             n_irrelevant=2, seed=1)

    reference = build()
    materialize(reference)

    t_clean, clean, _ = run_concurrent(build, latency, window)
    injector = FaultInjector(seed=11, drop_rate=0.1, error_rate=0.15,
                             delay_rate=0.1, duplicate_rate=0.1,
                             delay_seconds=latency, max_attempt=2)
    t_fault, faulted, system = run_concurrent(
        build, latency, window, injector=injector,
        call_timeout=max(latency * 4, 0.05), max_attempts=5,
        backoff_base=0.002, backoff_max=0.02, breaker_threshold=10_000)
    metrics = faulted.metrics
    accounted = (metrics.attempts_failed == metrics.retries + metrics.exhausted
                 and metrics.attempts_failed == injector.injected_failures)
    return {
        "workload": f"portal({n_cds}) at concurrency {window}, "
                    "faults on attempts ≤ 2",
        "clean_seconds": round(t_clean, 4),
        "faulted_seconds": round(t_fault, 4),
        "overhead_factor": round(t_fault / t_clean, 2),
        "faults_injected": dict(injector.injected),
        "retries": metrics.retries,
        "timeouts": metrics.timeouts,
        "duplicate_deliveries": metrics.duplicate_deliveries,
        "every_fault_retried_or_reported": accounted,
        "failures_reported": len(faulted.failures),
        "documents_equivalent": reference.equivalent_to(system),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_pr2.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        fanout = bench_slow_fanout(n_cds=8, latency=0.005, window=8)
        chain = bench_slow_chain(chain_n=5, latency=0.003, window=8)
        faults = bench_fault_overhead(n_cds=6, latency=0.003, window=8)
    else:
        fanout = bench_slow_fanout(n_cds=32, latency=0.015, window=8)
        chain = bench_slow_chain(chain_n=10, latency=0.005, window=8)
        faults = bench_fault_overhead(n_cds=16, latency=0.005, window=8)

    scenarios = {
        "slow_service_fanout": fanout,
        "slow_service_chain": chain,
        "fault_overhead": faults,
    }
    write_bench_json(args.out, scenarios)
    for name, row in scenarios.items():
        print(f"{name}: {row}")
    ok = (fanout["documents_equivalent"] and chain["documents_equivalent"]
          and faults["documents_equivalent"]
          and faults["every_fault_retried_or_reported"]
          and fanout["meets_target"])
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
