"""Ablations — measuring the design choices DESIGN.md §5 commits to.

A1  Incremental antichain grafting vs naive append-then-re-reduce.
    The engine inserts each answer into the parent's child antichain and
    prunes upward along one path; the naive alternative appends everything
    and re-reduces the whole document, re-checking every sibling pair.

A2  Semi-naive vs naive datalog evaluation (the reference engine that
    grounds experiment E4).

A3  Scheduler choice: round-robin vs LIFO vs random invocation counts to
    reach the same fixpoint (confluence makes them interchangeable in
    outcome, not in cost).
"""

import time

import pytest

from paxml.datalog import evaluate, transitive_closure_program
from paxml.system import RewritingEngine, materialize
from paxml.system.invocation import call_path, evaluate_call
from paxml.tree.reduction import canonical_key, reduce_in_place
from paxml.workloads import chain_edges, portal_system, tc_system

from .harness import print_table


# ----------------------------------------------------------------------
# A1: naive grafting baseline
# ----------------------------------------------------------------------


def materialize_naive(system, max_steps=10_000) -> int:
    """Fixpoint loop with append-everything + whole-document re-reduction.

    Change detection compares whole-document canonical keys — the honest
    cost of not tracking insertions incrementally.
    """
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        for document in system.documents.values():
            for node in list(document.root.function_nodes()):
                try:
                    path = call_path(document, node)
                except Exception:
                    continue
                answers = evaluate_call(system, node, path[-2])
                before = canonical_key(document.root)
                for answer in answers:
                    path[-2].add_child(answer.copy())
                reduce_in_place(document.root)
                steps += 1
                if canonical_key(document.root) != before:
                    changed = True
    return steps


@pytest.mark.parametrize("n", [6, 10])
def test_a1_incremental(benchmark, n):
    benchmark.group = f"A1 grafting (TC chain-{n})"
    benchmark.name = "incremental antichain"

    def once():
        system = tc_system(chain_edges(n))
        materialize(system)
        return system

    benchmark(once)


@pytest.mark.parametrize("n", [6, 10])
def test_a1_naive(benchmark, n):
    benchmark.group = f"A1 grafting (TC chain-{n})"
    benchmark.name = "append + full re-reduce"

    def once():
        system = tc_system(chain_edges(n))
        materialize_naive(system)
        return system

    benchmark(once)


# ----------------------------------------------------------------------
# A2: semi-naive vs naive datalog
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["semi_naive", "naive"])
def test_a2_datalog(benchmark, mode):
    program = transitive_closure_program(chain_edges(14))
    benchmark.group = "A2 datalog evaluation (TC chain-14)"
    benchmark.name = mode
    benchmark(lambda: evaluate(program, semi_naive=(mode == "semi_naive")))


# ----------------------------------------------------------------------
# rows
# ----------------------------------------------------------------------


def test_ablation_rows(benchmark):
    rows = []

    # A1
    for n in (6, 10):
        incremental = tc_system(chain_edges(n))
        start = time.perf_counter()
        result = materialize(incremental)
        t_inc = time.perf_counter() - start

        naive = tc_system(chain_edges(n))
        start = time.perf_counter()
        naive_steps = materialize_naive(naive)
        t_naive = time.perf_counter() - start
        assert incremental.equivalent_to(naive)
        rows.append((f"A1 TC chain-{n}",
                     f"incremental {t_inc * 1e3:.1f} ms ({result.steps} calls)",
                     f"naive {t_naive * 1e3:.1f} ms ({naive_steps} calls)",
                     f"×{t_naive / max(t_inc, 1e-9):.1f}"))

    # A2
    program = transitive_closure_program(chain_edges(14))
    start = time.perf_counter()
    semi = evaluate(program, semi_naive=True)
    t_semi = time.perf_counter() - start
    start = time.perf_counter()
    naive_result = evaluate(program, semi_naive=False)
    t_naive = time.perf_counter() - start
    assert semi.facts == naive_result.facts
    rows.append(("A2 datalog TC chain-14",
                 f"semi-naive {t_semi * 1e3:.1f} ms",
                 f"naive {t_naive * 1e3:.1f} ms",
                 f"×{t_naive / max(t_semi, 1e-9):.1f}"))

    # A3
    for scheduler, seed in [("round_robin", None), ("lifo", None),
                            ("random", 0)]:
        system = portal_system(16, n_irrelevant=8, seed=2)
        result = RewritingEngine(system, scheduler=scheduler, seed=seed).run()
        rows.append((f"A3 portal via {scheduler}",
                     f"{result.steps} invocations",
                     f"{result.productive_steps} productive", "-"))

    print_table("Ablations A1–A3 (DESIGN.md §5)",
                ["ablation", "chosen design", "baseline", "speedup"], rows)
    benchmark(lambda: None)
