"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable builds (which need build isolation or ``bdist_wheel``)
cannot run.  Keeping a classic ``setup.py`` lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path, which works offline.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
