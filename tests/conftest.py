"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from paxml import AXMLSystem, Node, fun, label, val


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Leave the process-wide observability bus clean after every test."""
    yield
    from paxml.obs import bus
    from paxml.obs.provenance import clear_staged

    bus.reset()
    clear_staged()


# ----------------------------------------------------------------------
# hypothesis strategies for AXML trees
# ----------------------------------------------------------------------

_LABELS = ["a", "b", "c", "d"]
_VALUES = [0, 1, "x"]
_FUNCTIONS = ["f", "g"]


def tree_strategy(max_depth: int = 4, allow_functions: bool = False,
                  max_children: int = 3) -> st.SearchStrategy[Node]:
    """Random AXML trees: labels inside, values at leaves, optional calls."""

    def extend(children: st.SearchStrategy[Node]) -> st.SearchStrategy[Node]:
        inner = st.builds(
            lambda name, kids: Node(name, kids),
            st.sampled_from(_LABELS),
            st.lists(children, max_size=max_children),
        )
        if allow_functions:
            calls = st.builds(
                lambda name, kids: fun(name, *kids),
                st.sampled_from(_FUNCTIONS),
                st.lists(children, max_size=2),
            )
            inner = st.one_of(inner, calls)
        return inner

    leaves = st.one_of(
        st.sampled_from(_VALUES).map(val),
        st.sampled_from(_LABELS).map(label),
    )
    return st.recursive(leaves, extend, max_leaves=12).map(_labelled_root)


def _labelled_root(node: Node) -> Node:
    # Document roots must not be function nodes (Def. 2.1(ii)).
    if node.is_function:
        return label("root", node)
    return node


# ----------------------------------------------------------------------
# canonical example systems from the paper
# ----------------------------------------------------------------------


@pytest.fixture
def example_2_1() -> AXMLSystem:
    """d/a{f} with f returning a{f} — the divergent nesting loop."""
    return AXMLSystem.build(documents={"d": "a{!f}"},
                            services={"f": "a{!f} :- "})


@pytest.fixture
def example_3_2() -> AXMLSystem:
    """Transitive closure via a simple positive system."""
    return AXMLSystem.build(
        documents={
            "d0": "r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}, t{c0{3}, c1{4}}}",
            "d1": "r{!g, !f}",
        },
        services={
            "g": "t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}",
            "f": "t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}",
        },
    )


@pytest.fixture
def example_3_3() -> AXMLSystem:
    """The non-simple divergent system with a growing tree-variable copy."""
    return AXMLSystem.build(
        documents={"dp": "a{a{b}, !g}"},
        services={"g": "a{a{*X}} :- context/a{a{*X}}"},
    )


@pytest.fixture
def jazz_portal() -> AXMLSystem:
    """The introduction's music-portal scenario, concretised."""
    return AXMLSystem.build(
        documents={
            "portal": '''directory{
                cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
                cd{title{"Body and Soul"}, singer{"Billie Holiday"},
                   !GetRating{"Body and Soul"}},
                promos{!FreeMusicDB{type{"Jazz"}}}}''',
            "ratingsdb": 'db{entry{song{"Body and Soul"}, stars{"****"}}}',
            "musicdb": 'db{item{title{"So What"}}}',
        },
        services={
            "GetRating": 'rating{$s} :- input/input{$t}, '
                         'ratingsdb/db{entry{song{$t}, stars{$s}}}',
            "FreeMusicDB": 'cd{title{$t}} :- musicdb/db{item{title{$t}}}',
        },
    )
