"""Tests for snapshot evaluation (Section 3.1, Proposition 3.1)."""

import pytest

from paxml.query import (
    enumerate_assignments,
    evaluate_snapshot,
    match_pattern,
    parse_pattern,
    parse_query,
)
from paxml.query.matching import MissingDocumentError
from paxml.query.variables import LabelVar, TreeVar, ValueVar
from paxml.tree import Forest, Label, Value, parse_tree, to_canonical


def snapshot(query_text: str, **documents: str) -> Forest:
    return evaluate_snapshot(
        parse_query(query_text),
        {name: parse_tree(text) for name, text in documents.items()},
    )


def canon(forest: Forest) -> set:
    return {to_canonical(tree) for tree in forest}


class TestMatching:
    def test_constant_pattern(self):
        matches = list(match_pattern(parse_pattern("a{b}"), parse_tree("a{b, c}")))
        assert matches == [{}]

    def test_no_match(self):
        assert not list(match_pattern(parse_pattern("a{z}"), parse_tree("a{b}")))

    def test_value_variable_bindings(self):
        matches = list(match_pattern(parse_pattern("a{$x}"),
                                     parse_tree("a{1, 2, b}")))
        values = sorted(m[ValueVar("x")].value for m in matches)
        assert values == [1, 2]  # label child b is not a value

    def test_label_variable_skips_other_kinds(self):
        matches = list(match_pattern(parse_pattern("a{@l}"),
                                     parse_tree("a{1, b, !f}")))
        assert [m[LabelVar("l")] for m in matches] == [Label("b")]

    def test_function_variable(self):
        matches = list(match_pattern(parse_pattern("a{#h}"),
                                     parse_tree("a{!f, !g, b}")))
        names = sorted(m[list(m)[0]].name for m in matches)
        assert names == ["f", "g"]

    def test_shared_variable_joins(self):
        matches = list(match_pattern(parse_pattern("a{p{$x}, q{$x}}"),
                                     parse_tree("a{p{1}, p{2}, q{2}}")))
        assert len(matches) == 1
        assert matches[0][ValueVar("x")] == Value(2)

    def test_non_injective_embedding(self):
        # Both pattern children may map onto the same document child.
        matches = list(match_pattern(parse_pattern("a{b, b}"), parse_tree("a{b}")))
        assert matches == [{}]

    def test_tree_variable_binds_subtree(self):
        matches = list(match_pattern(parse_pattern("a{b{*T}}"),
                                     parse_tree("a{b{c{d}}}")))
        assert len(matches) == 1
        bound = matches[0][TreeVar("T")]
        assert to_canonical(bound) == "c{d}"

    def test_matching_through_function_nodes(self):
        matches = list(match_pattern(parse_pattern("a{!f{$p}}"),
                                     parse_tree('a{!f{"arg"}}')))
        assert matches[0][ValueVar("p")] == Value("arg")


class TestSnapshotSemantics:
    def test_paper_example_3_1_label_variable(self):
        d = "r{t{a{1}, b{c{2}, d{3}}}, t{a{1}, b{c{3}, e{3}}}, t{a{2}, b{c{2}, k{6}}}}"
        dp = "a{1}"
        result = snapshot("@z :- dp/a{$x}, d/r{t{a{$x}, b{@z}}}", d=d, dp=dp)
        assert canon(result) == {"c", "d", "e"}

    def test_paper_example_3_1_tree_variable(self):
        d = "r{t{a{1}, b{c{2}, d{3}}}, t{a{1}, b{c{3}, e{3}}}, t{a{2}, b{c{2}, k{6}}}}"
        result = snapshot("*Z :- dp/a{$x}, d/r{t{a{$x}, b{*Z}}}", d=d, dp="a{1}")
        assert canon(result) == {"c{2}", "d{3}", "c{3}", "e{3}"}

    def test_result_is_reduced_forest(self):
        result = snapshot("hit{$x} :- d/a{b{$x}, c{$x}}", d="a{b{1}, c{1}, b{2}}")
        assert canon(result) == {"hit{1}"}

    def test_inequality_filters(self):
        # Positional slots keep p(x,y) tuples apart (trees are unordered:
        # bare p{$x,$y} would collapse p{1,1} into p{1,2} on reduction).
        with_neq = snapshot("p{l{$x}, r{$y}} :- d/a{$x, $y}, $x != $y", d="a{1, 2}")
        without = snapshot("p{l{$x}, r{$y}} :- d/a{$x, $y}", d="a{1, 2}")
        assert canon(with_neq) == {"p{l{1}, r{2}}", "p{l{2}, r{1}}"}
        assert canon(without) == {"p{l{1}, r{1}}", "p{l{1}, r{2}}",
                                  "p{l{2}, r{1}}", "p{l{2}, r{2}}"}

    def test_unordered_reduction_collapses_symmetric_heads(self):
        # The subtlety the paper's Example 3.2 glosses over: without column
        # labels, unordered tuples merge under reduction.
        result = snapshot("p{$x, $y} :- d/a{$x, $y}", d="a{1, 2}")
        assert canon(result) == {"p{1, 2}"}

    def test_empty_body_rule(self):
        result = evaluate_snapshot(parse_query("a{b} :- "), {})
        assert canon(result) == {"a{b}"}

    def test_unsatisfied_body_yields_empty(self):
        assert len(snapshot("z :- d/a{missing}", d="a{b}")) == 0

    def test_missing_document_raises(self):
        with pytest.raises(MissingDocumentError):
            snapshot("z :- other/a", d="a")

    def test_cross_document_join(self):
        result = snapshot(
            "pair{$x} :- d/a{$x}, e/b{$x}",
            d="a{1, 2, 3}", e="b{2, 3, 4}",
        )
        assert canon(result) == {"pair{2}", "pair{3}"}

    def test_head_builds_structure(self):
        result = snapshot("out{copy{$x}, mark} :- d/a{$x}", d="a{7}")
        assert canon(result) == {"out{copy{7}, mark}"}

    def test_head_emits_calls(self):
        result = snapshot("w{!probe{$x}} :- d/a{$x}", d="a{5}")
        assert canon(result) == {"w{!probe{5}}"}

    def test_regex_matching(self):
        result = snapshot("hit{$v} :- d/r{[p.(q|s)+]{$v}}",
                          d="r{p{q{1}, s{q{2}}}, p{z{3}}}")
        assert canon(result) == {"hit{1}", "hit{2}"}

    def test_regex_single_label_equals_plain(self):
        regex = snapshot("hit{$v} :- d/r{[a]{$v}}", d="r{a{1}, b{2}}")
        plain = snapshot("hit{$v} :- d/r{a{$v}}", d="r{a{1}, b{2}}")
        assert canon(regex) == canon(plain)

    def test_regex_wildcard(self):
        result = snapshot("hit{$v} :- d/r{[_._]{$v}}", d="r{a{b{1}}, c{d{2}}, e{3}}")
        assert canon(result) == {"hit{1}", "hit{2}"}

    def test_regex_does_not_cross_function_nodes(self):
        result = snapshot("hit{$v} :- d/r{[a.b]{$v}}", d="r{a{!f{b{1}}}}")
        assert len(result) == 0


class TestAssignmentEnumeration:
    def test_deduplicates_assignments(self):
        query = parse_query("z{$x} :- d/a{b{$x}}")
        # Two embeddings of b{$x} with the same binding are one assignment.
        assignments = enumerate_assignments(
            query, {"d": parse_tree("a{b{1}, b{1}}")}
        )
        assert len(assignments) == 1

    def test_tree_bindings_deduplicated_up_to_equivalence(self):
        query = parse_query("z{*T} :- d/a{*T}")
        assignments = enumerate_assignments(
            query, {"d": parse_tree("a{b{c}, b{c}}")}
        )
        assert len(assignments) == 1


class TestMonotonicity:
    def test_snapshot_monotone_in_document_growth(self):
        # Proposition 3.1(1): I ⊆ J implies q(I) ⊆ q(J).
        query = parse_query("hit{$x} :- d/a{b{$x}}")
        small = parse_tree("a{b{1}}")
        large = parse_tree("a{b{1}, b{2}, c}")
        small_result = evaluate_snapshot(query, {"d": small})
        large_result = evaluate_snapshot(query, {"d": large})
        assert small_result.subsumed_by(large_result)

    def test_inequalities_on_markings_stay_monotone(self):
        query = parse_query("pair{$x, $y} :- d/a{$x, $y}, $x != $y")
        small = parse_tree("a{1, 2}")
        large = parse_tree("a{1, 2, 3}")
        assert evaluate_snapshot(query, {"d": small}).subsumed_by(
            evaluate_snapshot(query, {"d": large})
        )
