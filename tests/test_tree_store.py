"""The columnar store and bitset antichain against their object oracles.

The PR 6 raw-speed layer (``paxml.tree.store``, ``paxml.tree.antichain``
and the evaluator's head templates) is pure acceleration: every array,
bitset and compiled closure must be observationally equivalent to the
PR 4 object-tree paths it shadows.  These tests drive the store through
hundreds of random graft sequences — clean, batch-wide, fault-injected
and across a checkpoint/resume boundary with the flag flipped on exactly
one side — and check the arrays cell by cell against the object tree.
"""

from __future__ import annotations

import random

import pytest

from paxml import perf
from paxml.kernel import RunStatus, resume
from paxml.obs.metrics import REGISTRY
from paxml.query.incremental import (
    IncrementalQueryEvaluator,
    _compile_head_bits,
    _compile_head_key,
)
from paxml.query.matching import enumerate_assignments, evaluate_snapshot
from paxml.query.parser import parse_query
from paxml.query.pattern import instantiate
from paxml.runtime import AsyncRuntime, FaultInjector, RuntimeConfig, RuntimeStatus
from paxml.system import materialize
from paxml.system.invocation import graft_trees
from paxml.system.rewriting import RewritingEngine
from paxml.tree import canonical_key, is_subsumed, label, val
from paxml.tree import store as tree_store
from paxml.tree.antichain import BitsetAntichain
from paxml.tree.node import Node
from paxml.tree.reduction import antichain_insert
from paxml.workloads import (
    chain_edges,
    portal_system,
    random_edges,
    random_tree,
    relation_tree,
    tc_system,
)


@pytest.fixture(autouse=True)
def _clean_perf():
    perf.flags.set_all(True)
    perf.stats.reset()
    yield
    perf.flags.set_all(True)
    perf.stats.reset()


# ----------------------------------------------------------------------
# the cell-by-cell oracle
# ----------------------------------------------------------------------


def oracle_bits(node: Node) -> int:
    """Recompute a subtree's packed marking bitset from the object tree."""
    bits = 0
    for sub in node.iter_nodes():
        bits |= 1 << tree_store.intern_marking(sub.marking)
    return bits


def assert_store_consistent(root: Node) -> None:
    """Every row the store answers for ``root`` must match the objects."""
    for node in root.iter_nodes():
        row = tree_store.ensure_row(node)
        assert tree_store.row_marking(row) == node.marking
        assert tree_store.row_version(row) == node.version
        assert tree_store.node_at(row) is node
        assert tree_store.subtree_bits(node) == oracle_bits(node)
        child_rows = tree_store.children_rows(node)
        assert [tree_store.node_at(r) for r in child_rows] == node.children
        for crow in child_rows:
            assert tree_store.row_parent(crow) == row
        if node.is_value:
            assert tree_store.row_value(row) == node.marking.value


def path_to(root: Node, node: Node) -> list:
    path = []
    cursor = node
    while cursor is not None:
        path.append(cursor)
        cursor = cursor.parent
    path.reverse()
    assert path[0] is root
    return path


# ----------------------------------------------------------------------
# random graft sequences: store vs object tree, flag-on vs flag-off
# ----------------------------------------------------------------------


def _run_graft_sequence(seed: int, flag_on: bool, check: bool) -> Node:
    """One deterministic random graft sequence; returns the final tree."""
    perf.flags.columnar_store = flag_on
    tree_store.clear_store()
    rng = random.Random(seed)
    root = random_tree(18, seed)
    if flag_on:
        tree_store.warm(root)
    for step in range(6):
        targets = [n for n in root.iter_nodes()
                   if n is not root and not n.is_value]
        if not targets:
            break
        target = rng.choice(targets)
        forest = [random_tree(rng.randint(1, 6), seed * 977 + step * 13 + i)
                  for i in range(rng.randint(1, 3))]
        graft_trees(path_to(root, target), forest)
        if check and flag_on:
            assert_store_consistent(root)
    return root


@pytest.mark.parametrize("block", range(5))
def test_store_matches_object_tree_on_100_random_graft_sequences(block):
    """≥100 random graft sequences: arrays equal the objects cell by cell,
    and the flag-on tree is structurally identical to the flag-off one."""
    for seed in range(block * 20, block * 20 + 20):
        with_store = _run_graft_sequence(seed, flag_on=True, check=True)
        without = _run_graft_sequence(seed, flag_on=False, check=False)
        assert canonical_key(with_store) == canonical_key(without)


def test_untracked_mutations_heal_at_read_time():
    """``add_child`` outside the graft path stales rows; the next read
    must rebuild them (counted) instead of answering from stale bits."""
    root = random_tree(12, 3)
    tree_store.warm(root)
    inner = next(n for n in root.iter_nodes() if not n.is_value)
    inner.add_child(label("healed", val("fresh")))
    before = perf.stats.store_rebuild_patches
    assert_store_consistent(root)
    assert perf.stats.store_rebuild_patches > before


def test_batch_graft_on_wide_parent_matches_sequential():
    """The ≥32-sibling batch path (BitsetAntichain.from_antichain) must
    insert/evict exactly what per-tree antichain_insert would."""
    def build():
        # 40 pairwise-incomparable siblings: distinct values.
        return label("wide", *[label("row", val(i)) for i in range(40)])

    grafts = (
        # one duplicate (subsumed), one dominator, one genuinely new
        [label("row", val(7)), label("row", val(3), val(900)), label("row", val(777))],
        [label("row", val(900)), label("row", val(901))],
    )

    results = {}
    for flag_on in (False, True):
        perf.flags.columnar_store = flag_on
        tree_store.clear_store()
        root = label("doc", build())
        wide = root.children[0]
        if flag_on:
            tree_store.warm(root)
        for batch in grafts:
            inserted = graft_trees([root, wide, wide.children[0]],
                                   [t.copy() for t in batch])
            assert len(inserted) >= 1
        for child in wide.children:
            assert child.parent is wide
        if flag_on:
            assert_store_consistent(root)
        results[flag_on] = canonical_key(root)
    assert results[True] == results[False]


# ----------------------------------------------------------------------
# whole-system runs: clean, fault-injected, flag matrix
# ----------------------------------------------------------------------


def _doc_keys(system):
    return {name: canonical_key(doc.root)
            for name, doc in system.documents.items()}


@pytest.mark.parametrize("seed", range(4))
def test_fault_injected_run_keeps_store_consistent(seed):
    reference = tc_system(random_edges(5, 8, seed=seed))
    perf.flags.columnar_store = False
    materialize(reference)
    expected = _doc_keys(reference)

    perf.flags.columnar_store = True
    tree_store.clear_store()
    subject = tc_system(random_edges(5, 8, seed=seed))
    injector = FaultInjector(seed=seed, drop_rate=0.2, error_rate=0.2,
                             duplicate_rate=0.2, max_attempt=2)
    runtime = AsyncRuntime(subject, injector=injector,
                           config=RuntimeConfig(concurrency=3, seed=seed,
                                                max_attempts=6))
    result = runtime.run()
    assert result.status is RuntimeStatus.TERMINATED
    assert _doc_keys(subject) == expected
    for doc in subject.documents.values():
        assert_store_consistent(doc.root)


def test_flag_matrix_reaches_the_same_fixpoint():
    """(columnar_store × closure_compile) ∈ {0,1}²: identical fixpoints."""
    fixpoints = []
    for columnar in (False, True):
        for closures in (False, True):
            perf.flags.set_all(True)
            perf.flags.columnar_store = columnar
            perf.flags.closure_compile = closures
            perf.clear_caches()
            system = portal_system(5, materialized_fraction=0.4, seed=11)
            outcome = materialize(system)
            assert outcome.terminated
            fixpoints.append(_doc_keys(system))
    assert all(fp == fixpoints[0] for fp in fixpoints[1:])


# ----------------------------------------------------------------------
# checkpoint → resume with the store flag flipped on one side
# ----------------------------------------------------------------------


@pytest.mark.parametrize("store_before,store_after",
                         [(True, False), (False, True)])
def test_checkpoint_resume_across_store_flag_flip(tmp_path, store_before,
                                                  store_after):
    """The store is derived data: a bundle written with the flag on must
    resume with it off (and vice versa) to the exact reference fixpoint."""
    perf.flags.columnar_store = False
    reference = portal_system(6, materialized_fraction=0.3, n_irrelevant=2,
                              seed=3)
    assert materialize(reference).terminated
    expected = _doc_keys(reference)

    perf.flags.columnar_store = store_before
    perf.clear_caches()
    system = portal_system(6, materialized_fraction=0.3, n_irrelevant=2,
                           seed=3)
    engine = RewritingEngine(system)
    partial = engine.run(max_steps=6)
    assert partial.status is RunStatus.BUDGET_EXHAUSTED
    bundle = str(tmp_path / "flip.jsonl")
    engine.checkpoint(bundle)

    perf.flags.columnar_store = store_after
    perf.clear_caches()
    resumed = resume(bundle)
    result = resumed.run()
    assert result.status is RunStatus.TERMINATED
    assert _doc_keys(resumed.system) == expected
    if store_after:
        # resume() warms the store from the restored documents
        for doc in resumed.system.documents.values():
            assert_store_consistent(doc.root)


# ----------------------------------------------------------------------
# BitsetAntichain against the object-set oracle
# ----------------------------------------------------------------------


def _keys(trees):
    return sorted(str(canonical_key(t)) for t in trees)


@pytest.mark.parametrize("seed", range(25))
def test_bitset_antichain_matches_antichain_insert(seed):
    rng = random.Random(seed)
    candidates = [random_tree(rng.randint(1, 7), seed * 131 + i)
                  for i in range(rng.randint(4, 14))]

    oracle: list = []
    index = BitsetAntichain()
    for tree in candidates:
        expected = antichain_insert(oracle, tree.copy())
        got = index.insert(tree)
        assert got == expected
    assert _keys(index) == _keys(oracle)
    assert len(index) == len(oracle)
    # the antichain invariant: pairwise incomparable
    kept = list(index)
    for i, a in enumerate(kept):
        for b in kept[i + 1:]:
            assert not is_subsumed(a, b) and not is_subsumed(b, a)


@pytest.mark.parametrize("seed", range(10))
def test_from_antichain_indexes_without_comparisons(seed):
    """Indexing an existing kept set, then inserting more, must equal one
    sequential antichain_insert run over the concatenation."""
    rng = random.Random(seed)
    first = [random_tree(rng.randint(1, 6), seed * 31 + i) for i in range(6)]
    second = [random_tree(rng.randint(1, 6), seed * 31 + 100 + i)
              for i in range(6)]

    oracle: list = []
    for tree in first + second:
        antichain_insert(oracle, tree.copy())

    kept: list = []
    for tree in first:
        antichain_insert(kept, tree)
    index = BitsetAntichain.from_antichain(kept)
    assert list(index.items()) == kept
    for tree in second:
        index.insert(tree)
    assert _keys(index) == _keys(oracle)


# ----------------------------------------------------------------------
# head-key / head-bits templates against instantiate+canonical_key
# ----------------------------------------------------------------------

_TEMPLATE_RULES = [
    "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$y}}}",
    "out{@l{$v}} :- d/r{t{c0{$v}}, @l{$v}}",
    "wrap{*T} :- d/r{box{*T}}",
    "pair{$x} :- d/r{t{c0{$x}, c1{$x}}}",
]


@pytest.mark.parametrize("rule", _TEMPLATE_RULES)
def test_head_templates_match_the_instantiating_oracle(rule):
    query = parse_query(rule)
    head_key = _compile_head_key(query.head)
    head_bits = _compile_head_bits(query.head)
    root = relation_tree(random_edges(4, 9, seed=5))
    root.add_child(label("fresh", val(1)))
    root.add_child(label("box", label("sub", val(1), val(2))))
    bindings = list(enumerate_assignments(query, {"d": root}))
    assert bindings, rule
    for binding in bindings:
        answer = instantiate(query.head, binding)
        if head_key is not None:
            assert head_key(binding) == canonical_key(answer)
        if head_bits is not None:
            assert head_bits(binding) == tree_store.subtree_bits(answer)


def test_head_key_template_declines_ambiguous_heads():
    """Sibling maximality is only statically vacuous when concrete child
    markings are pairwise distinct; variable markings must decline."""
    ambiguous = parse_query("p{c{$x}, c{$y}} :- d/r{t{c{$x}}, t{c{$y}}}")
    assert _compile_head_key(ambiguous.head) is None
    variable = parse_query("p{@l{$x}, c{$y}} :- d/r{@l{$x}, c{$y}}")
    assert _compile_head_key(variable.head) is None


def test_head_bits_survive_a_store_clear():
    """Interned ids die with clear_store(); the cached const mask must
    re-intern against the new generation, not answer with stale bits."""
    query = parse_query(_TEMPLATE_RULES[0])
    head_bits = _compile_head_bits(query.head)
    documents = {"d": relation_tree(chain_edges(3))}
    binding = next(iter(enumerate_assignments(query, documents)))
    first = head_bits(binding)
    assert first == tree_store.subtree_bits(instantiate(query.head, binding))
    tree_store.clear_store()
    again = head_bits(binding)
    assert again == tree_store.subtree_bits(instantiate(query.head, binding))


# ----------------------------------------------------------------------
# evaluator equivalence and the PR 6 counters
# ----------------------------------------------------------------------


def test_incremental_evaluator_equivalent_across_store_flag():
    query = parse_query("p{c0{$x}, c1{$y}} :- "
                        "d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}")
    results = {}
    for flag_on in (False, True):
        perf.flags.columnar_store = flag_on
        perf.clear_caches()
        root = relation_tree(random_edges(5, 12, seed=7))
        evaluator = IncrementalQueryEvaluator(query)
        forest = list(evaluator.evaluate_delta({"d": root}, site=1))
        # grow the relation and take the delta too
        root.add_child(label("t", label("c0", val(0)), label("c1", val(4))))
        forest.extend(evaluator.evaluate_delta({"d": root}, site=1))
        results[flag_on] = _keys(forest)
    assert results[True]  # the join is non-empty, no vacuous pass
    assert results[True] == results[False]


def test_const_subpattern_fast_path_fires():
    """Regression for the dormant runtime-const fast path: a join whose
    second atom becomes fully constant once $z is bound must route
    through the hash-consed subpattern test (and count doing so)."""
    query = parse_query("p{c0{$x}, c1{$y}} :- "
                        "d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}")
    root = relation_tree(chain_edges(6))
    # the runtime-const path lives in the lowered closures (the plan
    # interpreter is the PR 4 oracle and deliberately lacks it)
    perf.flags.closure_compile = True
    perf.stats.reset()
    forest = evaluate_snapshot(query, {"d": root})
    assert len(list(forest)) > 0
    assert perf.stats.const_subpattern_tests > 0


def test_pr6_counters_reach_the_metrics_registry():
    """store/bitset/closure counters must flow through paxml.obs.metrics
    (the paxml_perf pull collector) without any extra wiring."""
    # explicit (not via set_all): this test is about the PR 6 paths even
    # when the CI flag-matrix job disables them by default
    perf.flags.columnar_store = True
    perf.flags.closure_compile = True
    system = tc_system(chain_edges(4))
    perf.stats.reset()
    assert materialize(system).terminated
    scrape = REGISTRY.collect()
    for counter in ("paxml_perf_store_rebuild_patches",
                    "paxml_perf_store_graft_patches",
                    "paxml_perf_bitset_rejects",
                    "paxml_perf_closure_compilations",
                    "paxml_perf_facade_materializations",
                    "paxml_perf_const_subpattern_tests"):
        assert counter in scrape, counter
    assert perf.stats.closure_compilations > 0
    assert perf.stats.bitset_rejects >= 0
