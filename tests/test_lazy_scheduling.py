"""Lazy relevance-guided scheduling vs the eager oracle (Section 4).

The contract under test: for every registered query ``q``, a lazy run
(only weakly relevant calls invoked, the rest dormant) ends in a state
where ``q``'s answer forest equals ``q([I])`` from a full eager
materialization — clean, fault-injected, across a checkpoint/resume
cut, and sharded.  Plus the regression that makes laziness *lazy*:
dormant sites are never invoked (graft-log + invocation-count audit),
and the fire-once policy retires only what acyclicity proves complete.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml import perf
from paxml.kernel import resume
from paxml.obs import bus as obs_bus
from paxml.obs import events as obs_events
from paxml.query import evaluate_snapshot, parse_query
from paxml.runtime import AsyncRuntime, FaultInjector, RuntimeConfig
from paxml.serve import TenantSession
from paxml.system import RewritingEngine, materialize
from paxml.system.dependency import dependency_graph
from paxml.workloads import (
    portal_system,
    random_acyclic_system,
    random_edges,
    tc_system,
)

RATING_QUERY = ("res{title{$t}, rating{$r}} :- "
                "portal/directory{cd{title{$t}, rating{$r}}}")
TC_QUERY = "pair{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"

CASES = (
    [("acyclic", seed) for seed in range(8)]
    + [("tc", seed) for seed in range(6)]
    + [("portal", seed) for seed in range(10)]
)


def build_system(family: str, seed: int):
    if family == "acyclic":
        return random_acyclic_system(2 + seed % 3, seed=seed,
                                     values_per_doc=3)
    if family == "tc":
        return tc_system(random_edges(5, 6 + seed % 4, seed=seed))
    return portal_system(5 + seed % 3, materialized_fraction=0.4,
                         n_irrelevant=3, seed=seed)


def goal_query(family: str, seed: int):
    if family == "acyclic":
        top = (2 + seed % 3) - 1
        return parse_query(f"out{{$x}} :- doc{top}/layer{top}"
                           f"{{item{{w{top}{{$x}}}}}}")
    if family == "tc":
        return parse_query(TC_QUERY)
    return parse_query(RATING_QUERY)


def case_id(case) -> str:
    return f"{case[0]}-{case[1]}"


def answer_keys(query, system):
    return evaluate_snapshot(
        query, {name: doc.root for name, doc in system.documents.items()}
    ).canonical_keys()


def eager_reference(family: str, seed: int):
    system = build_system(family, seed)
    outcome = materialize(system)
    assert outcome.terminated
    return answer_keys(goal_query(family, seed), system)


# ----------------------------------------------------------------------
# lazy == eager on every registered query's answer forest
# ----------------------------------------------------------------------


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_lazy_matches_eager_sequential(case):
    family, seed = case
    reference = eager_reference(family, seed)

    lazy = build_system(family, seed)
    query = goal_query(family, seed)
    result = materialize(lazy, lazy_for=[query])
    assert result.terminated
    assert answer_keys(query, lazy) == reference, (
        f"lazy answer diverged from q([I]) on {family}-{seed}")


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_lazy_matches_eager_async_fault_injected(case):
    family, seed = case
    reference = eager_reference(family, seed)

    lazy = build_system(family, seed)
    query = goal_query(family, seed)
    injector = FaultInjector(seed=seed, drop_rate=0.15, error_rate=0.2,
                             delay_rate=0.15, duplicate_rate=0.15,
                             delay_seconds=0.002, max_attempt=2)
    config = RuntimeConfig(concurrency=6, seed=seed, call_timeout=0.05,
                           max_attempts=5, backoff_base=0.001,
                           backoff_max=0.01, breaker_threshold=10_000)
    result = AsyncRuntime(lazy, config=config, injector=injector,
                          lazy_for=[query]).run()
    assert result.terminated and not result.failures
    assert answer_keys(query, lazy) == reference, (
        f"fault-injected lazy answer diverged on {family}-{seed}")


@pytest.mark.parametrize("case", CASES[::3], ids=case_id)
def test_lazy_matches_eager_across_checkpoint_cut(case, tmp_path):
    family, seed = case
    reference = eager_reference(family, seed)

    lazy = build_system(family, seed)
    query = goal_query(family, seed)
    engine = RewritingEngine(lazy, lazy_for=[query])
    engine.run(max_steps=1 + seed % 3)
    bundle = str(tmp_path / "lazy.ckpt")
    engine.checkpoint(bundle)

    resumed = resume(bundle)
    kernel = resumed.kernel
    # The bundle restores lazy mode itself: dormant bucket + goal set.
    assert [str(q) for q in kernel.lazy_queries] == [str(query)]
    assert kernel.scheduler.dormant_count() == \
        engine.kernel.scheduler.dormant_count()
    result = resumed.run()
    assert result.terminated
    assert answer_keys(query, resumed.system) == reference, (
        f"resumed lazy answer diverged on {family}-{seed}")


@pytest.mark.parametrize("case", [("portal", 1), ("portal", 4),
                                  ("acyclic", 2), ("tc", 3)], ids=case_id)
def test_lazy_matches_eager_sharded(case):
    from paxml.shard import run_sharded

    family, seed = case
    reference = eager_reference(family, seed)
    query = goal_query(family, seed)
    result = run_sharded(build_system(family, seed), 2,
                         lazy_queries=[str(query)])
    assert result.replay_ok and not result.failures
    forest = evaluate_snapshot(
        query, {name: doc.root for name, doc in result.documents.items()})
    assert forest.canonical_keys() == reference, (
        f"sharded lazy answer diverged on {family}-{seed}")


# ----------------------------------------------------------------------
# the regression that makes it lazy: dormant sites are never invoked
# ----------------------------------------------------------------------


def test_dormant_sites_never_invoked():
    system = portal_system(12, materialized_fraction=0.3, n_irrelevant=9,
                           seed=7)
    engine = RewritingEngine(system, lazy_for=[parse_query(RATING_QUERY)])
    engine.kernel.log.retain = True
    result = engine.run()
    assert result.terminated
    # The promos branch reads only musicdb — never needed by a ratings
    # query.  Audit both the graft log and the invocation counters.
    assert all(record.service != "FreeMusicDB"
               for record in engine.kernel.log.records)
    assert "FreeMusicDB" not in engine.kernel.invocations_by_service
    assert engine.kernel.scheduler.dormant_count() == 9


def test_stabilized_not_terminated_with_dormant_remaining():
    system = portal_system(6, materialized_fraction=0.3, n_irrelevant=4,
                           seed=2)
    from paxml.kernel import RunStatus
    result = materialize(system, lazy_for=[parse_query(RATING_QUERY)])
    assert result.status is RunStatus.STABILIZED
    eager = portal_system(6, materialized_fraction=0.3, n_irrelevant=4,
                          seed=2)
    assert materialize(eager).status is RunStatus.TERMINATED


def test_graft_promotes_dormant_site():
    """Call-in-answer laziness: a grafted call's body goals wake a
    dormant site in a document the original goal set never read."""
    from paxml import AXMLSystem

    system = AXMLSystem.build(
        documents={"d": "root{!A}", "m": "h{!B, k{1}}"},
        services={
            # A's answer embeds a call to C…
            "A": "n{!C} :- ",
            # …whose body reads m — making m's dormant !B relevant.
            "C": "z{$v} :- m/h{k{$v}}",
            "B": "k{2} :- ",
        })
    query = parse_query("out{$x} :- d/root{n{z{$x}}}")
    engine = RewritingEngine(system, lazy_for=[query])
    scheduler = engine.kernel.scheduler
    # Seed goal set reads only d: !B sits dormant.
    assert scheduler.dormant_count() == 1
    result = engine.run()
    assert result.terminated
    assert scheduler.dormant_promotions >= 1
    assert scheduler.dormant_count() == 0
    assert engine.kernel.invocations_by_service.get("B", 0) >= 1
    # And B's contribution made it into the answer.
    forest = evaluate_snapshot(
        query, {name: doc.root
                for name, doc in system.documents.items()})
    texts = {key for key in forest.canonical_keys()}
    assert len(texts) == 2  # out{1} and out{2}


# ----------------------------------------------------------------------
# fire-once
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_fire_once_matches_eager_on_acyclic(seed):
    family = "acyclic" if seed % 2 else "portal"
    reference = eager_reference(family, seed)
    query = goal_query(family, seed)

    system = build_system(family, seed)
    result = materialize(system, fire_once=True)
    assert result.terminated
    assert answer_keys(query, system) == reference
    graph = dependency_graph(system)
    if not graph.recursive_functions():
        assert result.steps > 0


def test_fire_once_never_retires_recursive_services():
    system = tc_system([(0, 1), (1, 2), (2, 3)])
    engine = RewritingEngine(system, fire_once=True)
    result = engine.run()
    assert result.terminated
    # f reads d1 which holds !f — recursive, hence never eligible.  g
    # reads only the static d0, so it MAY retire (and soundly so).
    retired = {site[1].marking.name
               for site in engine.kernel.scheduler._retired.values()}
    assert "f" not in retired
    eager = tc_system([(0, 1), (1, 2), (2, 3)])
    materialize(eager)
    assert system.equivalent_to(eager)


def test_fire_once_retired_sites_survive_resume(tmp_path):
    system = portal_system(8, materialized_fraction=0.2, n_irrelevant=3,
                           seed=4)
    engine = RewritingEngine(system, fire_once=True)
    result = engine.run()
    assert result.terminated
    retired = engine.kernel.scheduler.retired_count()
    assert retired > 0
    fired = dict(engine.kernel.invocations_by_service)
    bundle = str(tmp_path / "fire.ckpt")
    engine.checkpoint(bundle)

    resumed = resume(bundle)
    assert resumed.kernel.fire_once
    assert resumed.kernel.scheduler.retired_count() == retired
    outcome = resumed.run()
    assert outcome.terminated
    # Resume must not re-fire retired calls: invocation counts frozen.
    assert dict(resumed.kernel.invocations_by_service) == fired


def test_external_graft_revives_retired_sites():
    from paxml.tree.node import fun, label, val

    system = portal_system(4, materialized_fraction=0.2, n_irrelevant=1,
                           seed=9)
    engine = RewritingEngine(system, fire_once=True)
    engine.run()
    kernel = engine.kernel
    assert kernel.scheduler.retired_count() > 0
    # Outside data invalidates every completeness proof.
    ratings = system.documents["ratingsdb"]
    kernel.apply_external(ratings, ratings.root, [
        label("entry", label("song", val("song-0")),
              label("stars", val("5")))])
    assert kernel.scheduler.retired_count() == 0


# ----------------------------------------------------------------------
# flag gating: perf.flags.lazy_scheduling off == eager, verbatim
# ----------------------------------------------------------------------


def test_flag_off_runs_eager_even_with_lazy_for():
    perf.flags.lazy_scheduling = False
    try:
        system = portal_system(6, materialized_fraction=0.3,
                               n_irrelevant=4, seed=2)
        result = materialize(system, lazy_for=[parse_query(RATING_QUERY)],
                             fire_once=True)
        from paxml.kernel import RunStatus
        assert result.status is RunStatus.TERMINATED

        eager = portal_system(6, materialized_fraction=0.3,
                              n_irrelevant=4, seed=2)
        assert materialize(eager).steps == result.steps
        assert system.equivalent_to(eager)
    finally:
        perf.flags.lazy_scheduling = True


def test_resume_of_lazy_bundle_with_flag_off_wakes_everything(tmp_path):
    system = portal_system(6, materialized_fraction=0.3, n_irrelevant=4,
                           seed=3)
    engine = RewritingEngine(system,
                             lazy_for=[parse_query(RATING_QUERY)])
    engine.run(max_steps=2)
    assert engine.kernel.scheduler.dormant_count() > 0
    bundle = str(tmp_path / "flagoff.ckpt")
    engine.checkpoint(bundle)

    perf.flags.lazy_scheduling = False
    try:
        resumed = resume(bundle)
        assert resumed.kernel.scheduler.dormant_count() == 0
        result = resumed.run()
        from paxml.kernel import RunStatus
        assert result.status is RunStatus.TERMINATED
    finally:
        perf.flags.lazy_scheduling = True
    eager = portal_system(6, materialized_fraction=0.3, n_irrelevant=4,
                          seed=3)
    materialize(eager)
    assert resumed.system.equivalent_to(eager)


# ----------------------------------------------------------------------
# observability: counters and the relevance_changed event
# ----------------------------------------------------------------------


def test_lazy_counters_and_relevance_event():
    events = []
    obs_bus.subscribe(lambda e: events.append(e),
                      kinds=[obs_events.RELEVANCE_CHANGED])
    obs_bus.enable()
    try:
        before = perf.stats.calls_skipped_unneeded
        system = portal_system(6, materialized_fraction=0.3,
                               n_irrelevant=5, seed=6)
        engine = RewritingEngine(system,
                                 lazy_for=[parse_query(RATING_QUERY)])
        engine.run()
        assert perf.stats.calls_skipped_unneeded > before
        assert engine.kernel.scheduler.skipped_unneeded > 0
    finally:
        obs_bus.disable()
    assert events and events[0].data["reason"] == "seed"
    assert events[0].data["dormant"] == 5


# ----------------------------------------------------------------------
# serve: the tenant's continuous-query set is the goal set
# ----------------------------------------------------------------------


def test_serve_subscribe_wakes_and_unsubscribe_retires():
    async def scenario():
        system = portal_system(8, materialized_fraction=0.3,
                               n_irrelevant=5, seed=3)
        session = TenantSession("lazy-t", system, lazy=True)
        scheduler = session.kernel.scheduler
        # No subscriptions: empty goal set, everything dormant, no
        # speculative work at all.
        assert scheduler.fresh_count() == 0
        assert scheduler.dormant_count() > 0
        assert not session.has_work()

        sub = session.subscribe(RATING_QUERY)
        assert scheduler.fresh_count() > 0
        while session.has_work():
            await session.run_slice(10_000)
        answers = set(sub.initial) | set(sub.drain())

        eager = portal_system(8, materialized_fraction=0.3,
                              n_irrelevant=5, seed=3)
        materialize(eager)
        from paxml.tree.serializer import to_canonical
        query = parse_query(RATING_QUERY)
        reference = {
            to_canonical(tree) for tree in evaluate_snapshot(
                query, {name: doc.root
                        for name, doc in eager.documents.items()}
            ).reduced().trees}
        assert answers == reference
        assert "FreeMusicDB" not in session.kernel.invocations_by_service

        sub.close()
        # Goal set now empty again: surviving sites demote to dormant.
        assert scheduler.fresh_count() == 0
        assert not session.has_work()
        stats = session.stats()
        assert stats["lazy"]["dormant"] == scheduler.dormant_count() > 0

    asyncio.run(scenario())


def test_serve_lazy_survives_suspend_resume(tmp_path):
    async def scenario():
        system = portal_system(6, materialized_fraction=0.3,
                               n_irrelevant=4, seed=8)
        session = TenantSession("sleeper", system, lazy=True)
        sub = session.subscribe(RATING_QUERY)
        await session.run_slice(2)
        bundle = str(tmp_path / "tenant.ckpt")
        session.suspend(bundle)
        session.resume()
        # The resumed kernel reseeds from the hub's live query set.
        assert [str(q) for q in session.kernel.lazy_queries] == \
            [str(parse_query(RATING_QUERY))]
        while session.has_work():
            await session.run_slice(10_000)
        set(sub.drain())
        assert "FreeMusicDB" not in session.kernel.invocations_by_service
        assert session.kernel.scheduler.dormant_count() > 0

    asyncio.run(scenario())
