"""End-to-end tests of the serving layer's observability surface.

Each test boots a real :class:`PaxmlServer` (100 % head sampling unless
stated otherwise) and drives it over TCP with :class:`ServeClient` —
asserting the PR 8 causality contract: a traced ``inject``'s trace_id
rides the response echo, the subscription delta push, the
:class:`~paxml.kernel.graft.GraftRecord` in the kernel log, and the
flight-recorder dump — over clean *and* fault-injected runs — plus the
watchdog, the live span tail (``watch``) and the SLO board.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml.obs import trace as obs_trace
from paxml.runtime.faults import FaultInjector
from paxml.runtime.policy import RuntimeConfig
from paxml.serve import PaxmlServer, ServeClient, ServerOptions
from paxml.serve.obs_smoke import PAIRS_QUERY, STALL_SYSTEM, SYSTEM


@pytest.fixture(autouse=True)
def _trace_isolation():
    obs_trace.seed_sampler(1234)
    yield
    obs_trace.reset()
    obs_trace.seed_sampler(None)


def run_scenario(scenario, *, options=None, injector=None):
    async def main():
        server = PaxmlServer(
            options or ServerOptions(trace_sample_rate=1.0,
                                     watchdog_deadline=None),
            injector=injector)
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.shutdown()
    return asyncio.run(main())


async def _traced_inject_rides_everywhere(server, client):
    """The automated form of the acceptance criterion: one traced
    inject, its trace_id verified on every downstream artifact."""
    await client.create("alpha", SYSTEM)
    await client.run("alpha", timeout=60.0)
    sub = await client.subscribe("alpha", PAIRS_QUERY)
    response = await client.inject("alpha", "d0", "t{c0{7}, c1{8}}",
                                   trace=True)
    trace = response["trace"]
    assert trace["sampled"] and trace["trace_id"]
    trace_id = trace["trace_id"]

    answers = await client.next_delta(sub["sub"], timeout=30.0)
    assert answers == ["pair{c0{7}, c1{8}}"]
    assert any(t and t.get("trace_id") == trace_id
               for t in client.delta_traces(sub["sub"]))

    session = server.sessions["alpha"]
    assert any(record.trace and record.trace.get("trace_id") == trace_id
               for record in session.kernel.log)

    dump = await client.dump("alpha", inline=True)
    kinds = {row["kind"] for row in dump["events"]
             if row["data"].get("trace_id") == trace_id}
    assert {"serve_op", "span"} <= kinds
    return trace_id


def test_causality_clean_run():
    run_scenario(_traced_inject_rides_everywhere)


def test_causality_under_fault_injection():
    run_scenario(
        _traced_inject_rides_everywhere,
        options=ServerOptions(trace_sample_rate=1.0,
                              watchdog_deadline=None,
                              config=RuntimeConfig(call_timeout=0.5)),
        injector=FaultInjector(drop_rate=0.2, error_rate=0.2, seed=42))


def test_unsampled_requests_carry_no_trace():
    async def scenario(server, client):
        await client.create("alpha", SYSTEM)
        response = await client.inject("alpha", "d0", "t{c0{7}, c1{8}}")
        assert "trace" not in response
    run_scenario(scenario,
                 options=ServerOptions(trace_sample_rate=0.0,
                                       watchdog_deadline=None))


def test_client_propagated_trace_is_adopted():
    async def scenario(server, client):
        await client.create("alpha", SYSTEM)
        response = await client.inject(
            "alpha", "d0", "t{c0{7}, c1{8}}",
            trace={"trace_id": "cafe", "span_id": "beef", "sampled": True})
        # Adopted: same trace, fresh server-side span under the client's.
        assert response["trace"]["trace_id"] == "cafe"
        assert response["trace"]["parent_span_id"] == "beef"
    run_scenario(scenario,
                 options=ServerOptions(trace_sample_rate=0.0,
                                       watchdog_deadline=None))


def test_span_watch_tails_live_spans():
    async def scenario(server, client):
        await client.create("alpha", SYSTEM)
        watch = await client.watch()
        await client.inject("alpha", "d0", "t{c0{7}, c1{8}}", trace=True)
        span = await client.next_span(watch, timeout=10.0)
        assert span["name"].startswith("op:")
        await client.unwatch(watch)
    run_scenario(scenario)


def test_stats_exposes_slo_board_and_watchdog():
    async def scenario(server, client):
        await client.create("alpha", SYSTEM)
        await client.run("alpha", timeout=60.0)
        full = await client.stats()
        assert "slo" in full and "watchdog" in full
        slo_names = {row["slo"] for row in full["slo"]}
        assert "op-error-rate" in slo_names   # default board is live
        assert all(not row["breached"] for row in full["slo"])
        per_tenant = await client.stats("alpha")
        assert per_tenant["stalled"] is None
        assert per_tenant["open_breakers"] == []
    run_scenario(scenario)


def test_watchdog_flags_artificially_parked_session():
    """A tenant whose every call attempt is dropped parks behind an open
    breaker; the watchdog must flag it within the deadline with the
    breaker in the diagnostics."""
    async def scenario(server, client):
        await client.create("parked", STALL_SYSTEM)
        deadline = asyncio.get_event_loop().time() + 20.0
        stalled = None
        while asyncio.get_event_loop().time() < deadline:
            stats = await client.stats("parked")
            stalled = stats.get("stalled")
            if stalled:
                break
            await asyncio.sleep(0.1)
        assert stalled, "watchdog never flagged the parked tenant"
        assert stalled["open_breakers"] == ["local/h"]
        assert stalled["parked"] or stalled["fresh"] or stalled["tried"]
        full = await client.stats()
        assert "parked" in full["watchdog"]["stalled"]
        dump = await client.dump("parked", inline=True)
        assert any(row["kind"] == "watchdog_stall"
                   for row in dump["events"])
    run_scenario(
        scenario,
        options=ServerOptions(
            trace_sample_rate=1.0, watchdog_deadline=0.5,
            watchdog_period=0.1,
            config=RuntimeConfig(call_timeout=0.2, max_attempts=100,
                                 backoff_base=0.01, breaker_threshold=2,
                                 breaker_cooldown=3600.0)),
        injector=FaultInjector(drop_rate=1.0, seed=7))


def test_flight_dump_to_spool_on_shutdown(tmp_path):
    async def main():
        server = PaxmlServer(ServerOptions(trace_sample_rate=1.0,
                                           watchdog_deadline=None,
                                           spool_dir=str(tmp_path)))
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        await client.create("alpha", SYSTEM)
        await client.inject("alpha", "d0", "t{c0{7}, c1{8}}", trace=True)
        await client.close()
        await server.shutdown()
    asyncio.run(main())
    dumps = list(tmp_path.glob("flight-*.jsonl"))
    assert dumps, "graceful shutdown wrote no flight bundle"
    assert dumps[0].read_text().strip()
