"""Tests for document subsumption and equivalence (Definition 2.2)."""

import pytest

from paxml.tree import (
    forest_equivalent,
    forest_subsumed,
    is_equivalent,
    is_subsumed,
    parse_tree,
    witness_mapping,
)


def subsumed(small: str, big: str) -> bool:
    return is_subsumed(parse_tree(small), parse_tree(big))


class TestSubsumption:
    def test_reflexive(self):
        for text in ["a", "a{b{c}, d}", 'a{"v", !f}']:
            assert subsumed(text, text)

    def test_root_markings_must_match(self):
        assert not subsumed("a", "b")
        assert not subsumed("a", "b{a}")  # root maps to root, not deeper

    def test_paper_example(self):
        # From Section 2.1: b{c,c} ⊆ b{c,d,d}.
        assert subsumed("b{c, c}", "b{c, d, d}")

    def test_non_injective_mapping(self):
        # Two pattern siblings may map to one target child.
        assert subsumed("a{b, b, b}", "a{b}")

    def test_extra_children_allowed_on_right(self):
        assert subsumed("a{b}", "a{b, c, d{e}}")
        assert not subsumed("a{b, c, d{e}}", "a{b}")

    def test_depth_matters(self):
        assert subsumed("a{b}", "a{b{c}}")
        assert not subsumed("a{b{c}}", "a{b}")

    def test_values_and_functions(self):
        assert subsumed('a{"v"}', 'a{"v", "w"}')
        assert not subsumed('a{"v"}', 'a{"w"}')
        assert subsumed("a{!f{1}}", "a{!f{1, 2}}")
        assert not subsumed("a{!f}", "a{!g}")

    def test_function_semantics_ignored(self):
        # Remarks in Section 2.1: even if f(x) ⊆ g(x) always, the documents
        # are incomparable — subsumption is purely structural.
        assert not subsumed("a{!f{5}}", "a{!g{5}}")

    def test_transitive(self):
        t1, t2, t3 = "a{b}", "a{b, c}", "a{b, c, d{e}}"
        assert subsumed(t1, t2) and subsumed(t2, t3) and subsumed(t1, t3)

    def test_wide_trees(self):
        big = "a{" + ", ".join(f"b{{c{{{i}}}}}" for i in range(50)) + "}"
        assert subsumed("a{b{c{25}}}", big)
        assert not subsumed("a{b{c{99}}}", big)


class TestEquivalence:
    def test_reorder_is_equivalent(self):
        assert is_equivalent(parse_tree("a{b, c{d}}"), parse_tree("a{c{d}, b}"))

    def test_duplicate_siblings_are_equivalent(self):
        assert is_equivalent(parse_tree("a{b, b}"), parse_tree("a{b}"))

    def test_subsumed_sibling_is_redundant(self):
        assert is_equivalent(parse_tree("a{b{c, c}, b{c, d, d}}"),
                             parse_tree("a{b{c, d}}"))

    def test_not_equivalent(self):
        assert not is_equivalent(parse_tree("a{b}"), parse_tree("a{b, c}"))


class TestWitness:
    def test_witness_is_a_homomorphism(self):
        small = parse_tree("a{b{c}, b}")
        big = parse_tree("a{b{c, d}, e}")
        mapping = witness_mapping(small, big)
        # Root maps to root.
        assert mapping[id(small)] is big
        # Parent-child preserved with equal markings.
        for node, parent in small.iter_with_parents():
            image = mapping[id(node)]
            assert image.marking == node.marking
            if parent is not None:
                assert image in mapping[id(parent)].children

    def test_witness_raises_without_subsumption(self):
        with pytest.raises(ValueError):
            witness_mapping(parse_tree("a{x}"), parse_tree("a{y}"))


class TestForests:
    def test_forest_subsumption(self):
        small = [parse_tree("a{b}"), parse_tree("c")]
        big = [parse_tree("a{b, d}"), parse_tree("c{e}"), parse_tree("z")]
        assert forest_subsumed(small, big)
        assert not forest_subsumed(big, small)

    def test_empty_forest_subsumed_by_anything(self):
        assert forest_subsumed([], [parse_tree("a")])
        assert not forest_subsumed([parse_tree("a")], [])

    def test_forest_equivalence(self):
        left = [parse_tree("a{b}"), parse_tree("a{b, c}")]
        right = [parse_tree("a{c, b}")]
        # a{b} is subsumed by a{b,c}; both directions hold.
        assert forest_equivalent(left, right)
