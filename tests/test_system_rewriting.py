"""Tests for fair rewriting, confluence and ``[I↓N]`` (Theorem 2.1)."""

import pytest

from paxml.system import (
    AXMLSystem,
    RewritingEngine,
    Status,
    materialize,
    materialize_excluding,
)
from paxml.tree import to_canonical


class TestTermination:
    def test_no_calls_terminates_immediately(self):
        system = AXMLSystem.build(documents={"d": "a{b}"})
        result = materialize(system)
        assert result.status is Status.TERMINATED
        assert result.steps == 0

    def test_example_3_2_terminates_with_tc(self, example_3_2):
        result = materialize(example_3_2)
        assert result.status is Status.TERMINATED
        d1 = to_canonical(example_3_2.documents["d1"].root)
        assert "t{c0{1}, c1{4}}" in d1      # transitive fact
        assert "t{c0{4}" not in d1          # nothing invented

    def test_example_2_1_exhausts_budget(self, example_2_1):
        result = materialize(example_2_1, max_steps=10)
        assert result.status is Status.BUDGET_EXHAUSTED

    def test_example_2_1_prefix_shape(self, example_2_1):
        materialize(example_2_1, max_steps=3)
        text = to_canonical(example_2_1.documents["d"].root)
        # Nested a{!f, a{…}} chains — the paper's Example 2.1 rewriting.
        assert text.startswith("a{!f, a{!f")

    def test_example_3_3_accumulates_deepening_copies(self, example_3_3):
        materialize(example_3_3, max_steps=3)
        text = to_canonical(example_3_3.documents["dp"].root)
        assert "a{a{a{a{b}}}}" in text
        assert "a{b}" in text

    def test_trace_recording(self, example_3_2):
        engine = RewritingEngine(example_3_2, record_trace=True)
        result = engine.run()
        assert result.trace
        assert all(step.document == "d1" for step in result.trace)
        assert result.invocations_by_service.keys() == {"f", "g"}

    def test_productive_steps_counted(self, example_3_2):
        result = materialize(example_3_2)
        assert 0 < result.productive_steps <= result.steps


class TestConfluence:
    """Theorem 2.1: the fixpoint is independent of the invocation order."""

    def test_schedulers_agree_on_tc(self, example_3_2):
        signatures = set()
        for scheduler, seed in [("round_robin", None), ("lifo", None),
                                ("random", 1), ("random", 2), ("random", 3)]:
            system = example_3_2.copy()
            result = RewritingEngine(system, scheduler=scheduler,
                                     seed=seed).run()
            assert result.status is Status.TERMINATED
            signatures.add(frozenset(system.signature().items()))
        assert len(signatures) == 1

    def test_schedulers_agree_on_portal(self, jazz_portal):
        signatures = set()
        for seed in range(6):
            system = jazz_portal.copy()
            RewritingEngine(system, scheduler="random", seed=seed).run()
            signatures.add(frozenset(system.signature().items()))
        assert len(signatures) == 1

    def test_divergent_prefixes_are_comparable(self, example_2_1):
        # Lemma 2.1: any two reachable states are below the (shared) limit;
        # here: the shorter run's state is subsumed by the longer run's.
        short = example_2_1.copy()
        long = example_2_1.copy()
        materialize(short, max_steps=3)
        materialize(long, max_steps=7)
        assert short.subsumed_by(long)

    def test_unfair_scheduler_still_reaches_unique_fixpoint(self, example_3_2):
        system = example_3_2.copy()
        reference = example_3_2.copy()
        RewritingEngine(system, scheduler="lifo").run()
        materialize(reference)
        assert system.equivalent_to(reference)


class TestSuppressedCalls:
    def test_materialize_excluding_skips_calls(self, jazz_portal):
        suppressed = [node for _doc, node in jazz_portal.call_sites()
                      if node.marking.name == "GetRating"]
        result = materialize_excluding(jazz_portal, suppressed)
        assert result.status is Status.STABILIZED
        text = to_canonical(jazz_portal.documents["portal"].root)
        assert 'rating{"****"}' not in text      # GetRating never ran
        assert 'cd{title{"So What"}}' in text    # FreeMusicDB did

    def test_excluding_everything_is_identity(self, example_3_2):
        before = frozenset(example_3_2.signature().items())
        suppressed = [node for _d, node in example_3_2.call_sites()]
        result = materialize_excluding(example_3_2, suppressed)
        assert result.steps == 0
        assert frozenset(example_3_2.signature().items()) == before

    def test_excluding_nothing_equals_materialize(self, example_3_2):
        reference = example_3_2.copy()
        materialize(reference)
        result = materialize_excluding(example_3_2, [])
        assert example_3_2.equivalent_to(reference)
        # With an empty N the run reports plain termination.
        assert result.status is Status.TERMINATED

    def test_restriction_monotone_in_n(self, jazz_portal):
        # Suppressing more calls can only shrink the limit.
        all_calls = {node.marking.name: node
                     for _d, node in jazz_portal.call_sites()}
        small_n = jazz_portal.copy()
        # map names onto the copy's nodes
        def calls_of(system, names):
            return [node for _d, node in system.call_sites()
                    if node.marking.name in names]

        big_restricted = jazz_portal.copy()
        materialize_excluding(big_restricted,
                              calls_of(big_restricted,
                                       {"GetRating", "FreeMusicDB"}))
        small_restricted = jazz_portal.copy()
        materialize_excluding(small_restricted,
                              calls_of(small_restricted, {"GetRating"}))
        assert big_restricted.subsumed_by(small_restricted)


class TestEngineRobustness:
    def test_stale_calls_are_dropped(self):
        # A call node pruned away by a dominating sibling must be skipped.
        system = AXMLSystem.build(
            documents={"d": "a{box{!slow}, !fast}", "e": "src{payload{1}}"},
            services={
                # fast produces a subtree that strictly dominates box{!slow}…
                # it cannot (different function nodes are incomparable), so
                # instead make two equivalent boxes where reduction keeps one.
                "fast": "x :- e/src",
                "slow": "y{$v} :- e/src{payload{$v}}",
            },
        )
        result = materialize(system)
        assert result.status is Status.TERMINATED

    def test_budget_zero(self, example_3_2):
        result = materialize(example_3_2, max_steps=0)
        assert result.status is Status.BUDGET_EXHAUSTED
        assert result.steps == 0

    def test_unknown_scheduler_rejected(self, example_3_2):
        with pytest.raises(ValueError):
            RewritingEngine(example_3_2, scheduler="bogus")

    def test_new_calls_from_answers_are_scheduled(self):
        system = AXMLSystem.build(
            documents={"d": "a{!outer}", "e": "src{v{1}}"},
            services={
                "outer": "mid{!inner} :- ",
                "inner": "leaf{$v} :- e/src{v{$v}}",
            },
        )
        result = materialize(system)
        assert result.status is Status.TERMINATED
        assert "leaf{1}" in to_canonical(system.documents["d"].root)
