"""Tests for the regex/NFA substrate (Section 5 support)."""

import pytest

from paxml.automata import NFA, RegexError, parse_regex


def nfa(text: str) -> NFA:
    return NFA.from_regex(parse_regex(text))


class TestRegexParsing:
    @pytest.mark.parametrize("text,expected", [
        ("a", "a"),
        ("a.b.c", "a.b.c"),
        ("a|b", "a|b"),
        ("(a|b).c", "(a|b).c"),
        ("a*", "a*"),
        ("a+", "a+"),
        ("a?", "a?"),
        ("a.(b|c)*.d", "a.(b|c)*.d"),
        ("_", "_"),
        (" a . b ", "a.b"),
    ])
    def test_round_trip(self, text, expected):
        assert str(parse_regex(text)) == expected

    @pytest.mark.parametrize("text", ["", "(", "a|", "a..b", "*", ")a", "a)("])
    def test_malformed(self, text):
        with pytest.raises(RegexError):
            parse_regex(text)


class TestNFA:
    def test_single_letter(self):
        automaton = nfa("a")
        assert automaton.accepts(["a"])
        assert not automaton.accepts(["b"])
        assert not automaton.accepts([])
        assert not automaton.accepts(["a", "a"])

    def test_concatenation(self):
        automaton = nfa("a.b.c")
        assert automaton.accepts(["a", "b", "c"])
        assert not automaton.accepts(["a", "b"])
        assert not automaton.accepts(["a", "c", "b"])

    def test_alternation(self):
        automaton = nfa("a|b.c")
        assert automaton.accepts(["a"])
        assert automaton.accepts(["b", "c"])
        assert not automaton.accepts(["b"])

    def test_star(self):
        automaton = nfa("a.b*")
        assert automaton.accepts(["a"])
        assert automaton.accepts(["a", "b", "b", "b"])
        assert not automaton.accepts(["b"])

    def test_plus(self):
        automaton = nfa("a+")
        assert not automaton.accepts([])
        assert automaton.accepts(["a"])
        assert automaton.accepts(["a"] * 5)

    def test_optional(self):
        automaton = nfa("a.b?")
        assert automaton.accepts(["a"])
        assert automaton.accepts(["a", "b"])
        assert not automaton.accepts(["a", "b", "b"])

    def test_wildcard(self):
        automaton = nfa("a._.c")
        assert automaton.accepts(["a", "zzz", "c"])
        assert not automaton.accepts(["a", "c"])

    def test_accepts_empty_detection(self):
        assert nfa("a?").accepts_empty()
        assert nfa("a*").accepts_empty()
        assert not nfa("a").accepts_empty()
        assert not nfa("a+").accepts_empty()

    def test_nested_groups(self):
        automaton = nfa("(a.(b|c))+.d")
        assert automaton.accepts(["a", "b", "a", "c", "d"])
        assert not automaton.accepts(["a", "d"])

    def test_moves_are_epsilon_free(self):
        for move in nfa("(a|b)*.c").moves():
            assert move[1] is None or isinstance(move[1], str)

    def test_step_semantics(self):
        automaton = nfa("a.b")
        states = automaton.step([automaton.initial], "a")
        assert states
        assert not (states & automaton.accepting)
        states = automaton.step(states, "b")
        assert states & automaton.accepting

    def test_alphabet(self):
        assert nfa("a.(b|c)*._").alphabet() == {"a", "b", "c"}

    def test_live_states_reachable_and_productive(self):
        automaton = nfa("a.b|c")
        live = automaton.live_states()
        assert automaton.initial in live

    def test_word_fuzz_against_python_re(self):
        import itertools
        import re as pyre

        cases = [
            ("a.(b|c)*.d", "a(b|c)*d"),
            ("(a|b)+", "(a|b)+"),
            ("a.b?.c", "ab?c"),
        ]
        for ours, theirs in cases:
            automaton = nfa(ours)
            compiled = pyre.compile(theirs + r"\Z")
            for length in range(0, 5):
                for word in itertools.product("abcd", repeat=length):
                    assert automaton.accepts(list(word)) == bool(
                        compiled.match("".join(word))
                    ), (ours, word)
