"""Tests for the termination decision procedure (Theorem 3.3) and the
graph representation (Lemma 3.2)."""

import pytest

from paxml.analysis import (
    TerminationStatus,
    analyze_termination,
    build_graph_representation,
)
from paxml.system import AXMLSystem, materialize
from paxml.tree import is_equivalent, reduced_copy, to_canonical
from paxml.tree.reduction import reduce_in_place, truncated_copy
from paxml.workloads import fanout_divergent_system, nesting_chain_system, tc_system


class TestTerminationDecision:
    def test_example_2_1_diverges(self, example_2_1):
        report = analyze_termination(example_2_1)
        assert report.status is TerminationStatus.DIVERGES
        assert report.witness is not None
        # The witness is a genuine repeat: first and last configs match.
        assert report.witness[0] == report.witness[-1]

    def test_example_3_2_terminates(self, example_3_2):
        report = analyze_termination(example_3_2)
        assert report.status is TerminationStatus.TERMINATES
        assert not report.loop_edges

    def test_portal_terminates(self, jazz_portal):
        assert analyze_termination(jazz_portal).terminates

    def test_analysis_runs_on_copy_by_default(self, example_3_2):
        before = frozenset(example_3_2.signature().items())
        analyze_termination(example_3_2)
        assert frozenset(example_3_2.signature().items()) == before

    def test_in_place_saturates(self, example_3_2):
        analyze_termination(example_3_2, in_place=True)
        assert "t{c0{1}, c1{4}}" in to_canonical(example_3_2.documents["d1"].root)

    def test_context_guarded_termination(self):
        # f grows only under label z; its own output has root a, so the
        # nested call sees a different context and stays silent.
        system = AXMLSystem.build(documents={"d": "z{!f}"},
                                  services={"f": "a{!f} :- context/z"})
        report = analyze_termination(system)
        assert report.terminates

    def test_context_driven_divergence(self):
        system = AXMLSystem.build(documents={"d": "b{a{!f}}"},
                                  services={"f": "a{!f} :- context/a"})
        assert analyze_termination(system).diverges

    def test_mutual_recursion_diverges(self):
        system = AXMLSystem.build(
            documents={"d": "root{!f}"},
            services={"f": "x{!g} :- ", "g": "y{!f} :- "},
        )
        report = analyze_termination(system)
        assert report.diverges

    def test_chain_families(self):
        for depth in (1, 2, 4):
            assert analyze_termination(
                nesting_chain_system(depth, diverge=False)).terminates
            assert analyze_termination(
                nesting_chain_system(depth, diverge=True)).diverges

    def test_fanout_divergence(self):
        report = analyze_termination(fanout_divergent_system(3))
        assert report.diverges

    def test_tc_scaling(self):
        from paxml.workloads import chain_edges

        report = analyze_termination(tc_system(chain_edges(6)))
        assert report.terminates

    def test_non_simple_divergence_reports_unknown(self, example_3_3):
        # Example 3.3 is non-simple; its configurations never repeat, so
        # within a budget the analysis must answer UNKNOWN, never a wrong
        # TERMINATES (the problem is undecidable, Corollary 3.1).
        report = analyze_termination(example_3_3, max_steps=30)
        assert report.status is TerminationStatus.UNKNOWN

    def test_non_simple_but_terminating_is_exact(self):
        system = AXMLSystem.build(
            documents={"d": "a{!copy}", "e": "src{x{1}, y{z{2}}}"},
            services={"copy": "dup{*T} :- e/src{*T}"},
        )
        report = analyze_termination(system)
        assert report.terminates

    def test_suppressed_calls_are_left_alone(self, example_3_2):
        calls = [node for _d, node in example_3_2.call_sites()]
        report = analyze_termination(example_3_2, suppressed=calls)
        assert report.steps == 0
        assert report.terminates  # nothing allowed to run ⇒ trivially stable


class TestGraphRepresentation:
    def test_example_2_1_graph_is_infinite_and_small(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        graph = representation.graph("d")
        assert not representation.is_finite()
        assert graph.vertex_count() <= 8

    def test_unfold_matches_direct_rewriting(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        direct = example_2_1.copy()
        materialize(direct, max_steps=8)
        for depth in (2, 3, 4):
            from_graph = truncated_copy(representation.unfold("d", 10), depth)
            reduce_in_place(from_graph)
            from_direct = truncated_copy(direct.documents["d"].root, depth)
            reduce_in_place(from_direct)
            assert is_equivalent(from_graph, from_direct), depth

    def test_terminating_system_graph_is_exact(self, example_3_2):
        representation = build_graph_representation(example_3_2)
        assert representation.is_finite()
        reference = example_3_2.copy()
        materialize(reference)
        unfolded = reduced_copy(
            representation.unfold("d1", representation.graph("d1").required_unfold_depth())
        )
        assert is_equivalent(unfolded, reference.documents["d1"].root)

    def test_finiteness_decides_termination(self):
        # The Theorem 3.3 algorithm: build the representation, check cycles.
        assert build_graph_representation(
            nesting_chain_system(3, diverge=False)).is_finite()
        assert not build_graph_representation(
            nesting_chain_system(3, diverge=True)).is_finite()

    def test_non_simple_rejected(self, example_3_3):
        with pytest.raises(ValueError):
            build_graph_representation(example_3_3)

    def test_vertex_counts_reported(self, example_3_2):
        counts = build_graph_representation(example_3_2).vertex_counts()
        assert set(counts) == {"d0", "d1"}
        assert all(count > 0 for count in counts.values())
