"""Checkpoint/resume bundles, graft-log replay, and the kernel refactor.

Exercises the transactional graft log and JSONL checkpoint bundles end to
end: roundtrip, mid-run resume by either engine (Theorem 2.1 makes
cross-engine resumption sound), replay validation against the seed
snapshot, the ``perf.flags.graft_log`` off switch (PR 4 behaviour), the
shared-forest ``constant_service`` fast path, and the deprecated result
aliases.
"""

from __future__ import annotations

import base64
import json

import pytest

from paxml import obs, perf
from paxml.kernel.graft import decode_batch, encode_batch
from paxml.kernel import (
    BundleError,
    EvaluationKernel,
    ReplayDivergence,
    RunResult,
    RunStatus,
    load_bundle,
    replay_documents,
    resume,
)
from paxml.obs import events as obs_events
from paxml.runtime import AsyncRuntime, RuntimeConfig, RuntimeResult, RuntimeStatus
from paxml.system import (
    AXMLSystem,
    RewriteResult,
    RewritingEngine,
    Status,
    constant_service,
    materialize,
)
from paxml.tree import Forest, parse_tree
from paxml.tree.node import current_stamp
from paxml.workloads import portal_system


@pytest.fixture(autouse=True)
def _clean_perf():
    perf.flags.set_all(True)
    perf.stats.reset()
    yield
    perf.flags.set_all(True)
    perf.stats.reset()


def build_workload(seed: int = 3) -> AXMLSystem:
    """A portal system whose fair run needs 11+ invocations — long enough
    to suspend at step 6 with real work left on the frontier."""
    return portal_system(6, materialized_fraction=0.3, n_irrelevant=2,
                         seed=seed)


def reference_fixpoint(seed: int = 3) -> AXMLSystem:
    system = build_workload(seed)
    outcome = materialize(system)
    assert outcome.terminated
    return system


def checkpoint_midway(path, seed: int = 3, steps: int = 6):
    """Run a sequential engine for ``steps`` invocations, then snapshot."""
    system = build_workload(seed)
    engine = RewritingEngine(system)
    partial = engine.run(max_steps=steps)
    assert partial.status is RunStatus.BUDGET_EXHAUSTED
    engine.checkpoint(str(path))
    return engine, partial


class TestBundleRoundtrip:
    def test_bundle_is_jsonl_with_header_first(self, tmp_path):
        bundle_path = tmp_path / "run.ckpt"
        checkpoint_midway(bundle_path)
        lines = bundle_path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "header"
        assert records[0]["engine"] == "sequential"
        assert records[0]["steps"] == 6
        kinds = {record["kind"] for record in records}
        assert {"header", "service", "document", "seed",
                "frontier", "grafts"} <= kinds
        packed = next(r for r in records if r["kind"] == "grafts")
        assert packed["count"] == len(
            decode_batch(base64.b64decode(packed["packed"])))

    def test_load_bundle_exposes_run_state(self, tmp_path):
        bundle_path = tmp_path / "run.ckpt"
        engine, partial = checkpoint_midway(bundle_path)
        bundle = load_bundle(str(bundle_path))
        assert bundle.steps == partial.steps == 6
        assert bundle.engine == "sequential"
        assert bundle.replayable
        assert len(bundle.grafts) == partial.productive
        assert set(bundle.documents) == set(engine.system.documents)

    def test_header_must_come_first(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_text('{"kind":"document","name":"d","tree":{}}\n')
        with pytest.raises(BundleError):
            load_bundle(str(bad))

    def test_newer_format_rejected(self, tmp_path):
        bad = tmp_path / "future.ckpt"
        bad.write_text('{"kind":"header","format":999}\n')
        with pytest.raises(BundleError):
            load_bundle(str(bad))

    def test_checkpoint_restores_stamp_clock_past_bundle(self, tmp_path):
        bundle_path = tmp_path / "run.ckpt"
        checkpoint_midway(bundle_path)
        before = current_stamp()
        resume(str(bundle_path))
        assert current_stamp() >= before


class TestResume:
    @pytest.mark.parametrize("replay", [False, True],
                             ids=["snapshot", "replay"])
    def test_sequential_resume_reaches_the_fixpoint(self, tmp_path, replay):
        reference = reference_fixpoint()
        bundle_path = tmp_path / "run.ckpt"
        checkpoint_midway(bundle_path)

        engine = resume(str(bundle_path), replay=replay)
        assert isinstance(engine, RewritingEngine)
        assert engine.kernel.steps == 6
        assert engine.kernel.resumed_from == str(bundle_path)
        result = engine.run()
        assert result.status is RunStatus.TERMINATED
        assert result.resumed_from == str(bundle_path)
        assert result.steps > 6
        assert reference.equivalent_to(engine.system)

    def test_cross_engine_resume_sequential_to_async(self, tmp_path):
        reference = reference_fixpoint()
        bundle_path = tmp_path / "run.ckpt"
        checkpoint_midway(bundle_path)

        runtime = resume(str(bundle_path), engine="async",
                         config=RuntimeConfig(concurrency=4, seed=0))
        assert isinstance(runtime, AsyncRuntime)
        result = runtime.run()
        assert result.status is RunStatus.TERMINATED
        assert reference.equivalent_to(runtime.system)

    def test_cross_engine_resume_async_to_sequential(self, tmp_path):
        reference = reference_fixpoint()
        bundle_path = tmp_path / "run.ckpt"
        system = build_workload()
        runtime = AsyncRuntime(system,
                               config=RuntimeConfig(concurrency=3, seed=1,
                                                    max_invocations=5),
                               checkpoint_every=100,
                               checkpoint_path=str(bundle_path))
        partial = runtime.run()
        assert partial.status is RunStatus.BUDGET_EXHAUSTED
        assert partial.checkpoints >= 1  # the final snapshot at run end

        engine = resume(str(bundle_path), engine="sequential")
        assert isinstance(engine, RewritingEngine)
        result = engine.run()
        assert result.status is RunStatus.TERMINATED
        assert reference.equivalent_to(engine.system)

    def test_resume_of_a_finished_run_is_a_noop(self, tmp_path):
        bundle_path = tmp_path / "done.ckpt"
        system = build_workload()
        engine = RewritingEngine(system, checkpoint_every=1_000_000,
                                 checkpoint_path=str(bundle_path))
        finished = engine.run()
        assert finished.status is RunStatus.TERMINATED

        resumed = resume(str(bundle_path))
        result = resumed.run()
        assert result.status is RunStatus.TERMINATED
        assert result.productive == finished.productive
        assert system.equivalent_to(resumed.system)

    def test_periodic_checkpoints_resume_from_crash_point(self, tmp_path):
        """Kill the run mid-flight; the last periodic bundle finishes it."""
        reference = reference_fixpoint()
        bundle_path = tmp_path / "periodic.ckpt"
        system = build_workload()
        engine = RewritingEngine(system, checkpoint_every=2,
                                 checkpoint_path=str(bundle_path))

        class Crash(Exception):
            pass

        countdown = [7]

        def crash_soon(step):
            countdown[0] -= 1
            if countdown[0] == 0:
                raise Crash()

        engine.on_step = crash_soon
        with pytest.raises(Crash):
            engine.run()

        resumed = resume(str(bundle_path))
        assert resumed.kernel.steps == 6  # last multiple of checkpoint_every
        result = resumed.run()
        assert result.status is RunStatus.TERMINATED
        assert reference.equivalent_to(resumed.system)

    def test_resumed_run_checkpoints_again_and_chains(self, tmp_path):
        """checkpoint → resume → checkpoint → resume stays replayable."""
        reference = reference_fixpoint()
        first = tmp_path / "first.ckpt"
        checkpoint_midway(first, steps=4)

        middle = resume(str(first), replay=True)
        second = tmp_path / "second.ckpt"
        partial = middle.run(max_steps=8)
        assert partial.status is RunStatus.BUDGET_EXHAUSTED
        middle.checkpoint(str(second))

        final = resume(str(second), replay=True)  # replay from original seed
        result = final.run()
        assert result.status is RunStatus.TERMINATED
        assert reference.equivalent_to(final.system)

    def test_opaque_service_needs_override(self, tmp_path):
        system = AXMLSystem.build(
            documents={"d": "a{!c}"},
            services={"c": constant_service("c", Forest([parse_tree("k")]))})
        engine = RewritingEngine(system)
        engine.run(max_steps=0)
        bundle_path = tmp_path / "opaque.ckpt"
        engine.checkpoint(str(bundle_path))

        with pytest.raises(BundleError, match="opaque"):
            resume(str(bundle_path))

        override = constant_service("c", Forest([parse_tree("k")]))
        resumed = resume(str(bundle_path), services={"c": override})
        result = resumed.run()
        assert result.status is RunStatus.TERMINATED
        from paxml.tree import to_canonical
        assert "k" in to_canonical(resumed.system.documents["d"].root)


class TestReplay:
    def test_replay_documents_matches_snapshot(self, tmp_path):
        bundle_path = tmp_path / "run.ckpt"
        engine, _ = checkpoint_midway(bundle_path)
        bundle = load_bundle(str(bundle_path))
        replayed = replay_documents(bundle)
        for name, document in engine.system.documents.items():
            assert replayed[name].canonical_key() == document.canonical_key()

    def test_corrupted_log_raises_replay_divergence(self, tmp_path):
        bundle_path = tmp_path / "run.ckpt"
        checkpoint_midway(bundle_path)
        records = [json.loads(line) for line in
                   bundle_path.read_text().strip().splitlines()]
        for record in records:
            if record["kind"] == "grafts":
                grafts = decode_batch(base64.b64decode(record["packed"]))
                grafts[0].site = 999_999_999  # a node that never existed
                record["packed"] = base64.b64encode(
                    encode_batch(grafts)).decode("ascii")
                break
        bundle_path.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n")
        with pytest.raises(ReplayDivergence):
            resume(str(bundle_path), replay=True)

    def test_provenance_reemitted_on_resume(self, tmp_path):
        """A provenance index fed from the event stream survives the crash."""
        bundle_path = tmp_path / "run.ckpt"
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            checkpoint_midway(bundle_path)
        live_grafts = recorder.of_kind(obs_events.GRAFT_APPLIED)
        assert live_grafts

        resumed_recorder = obs.TraceRecorder()
        with obs.tracing(resumed_recorder):
            resume(str(bundle_path))
        replayed = resumed_recorder.of_kind(obs_events.GRAFT_APPLIED)
        assert [event.data["site"] for event in replayed] == [
            event.data["site"] for event in live_grafts]
        assert all(event.data["replayed"] for event in replayed)
        assert resumed_recorder.of_kind(obs_events.RUN_RESUMED)

    def test_checkpoint_event_emitted(self, tmp_path):
        bundle_path = tmp_path / "run.ckpt"
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            checkpoint_midway(bundle_path)
        saved = recorder.of_kind(obs_events.CHECKPOINT_SAVED)
        assert len(saved) == 1
        assert saved[0].data["path"] == str(bundle_path)
        assert saved[0].data["steps"] == 6


class TestGraftLogFlag:
    """perf.flags.graft_log=False restores PR 4 behaviour exactly."""

    def test_flag_off_run_matches_flag_on_run(self):
        on = build_workload()
        result_on = materialize(on)

        perf.flags.graft_log = False
        off = build_workload()
        result_off = materialize(off)

        assert result_off.status is result_on.status
        assert result_off.steps == result_on.steps
        assert result_off.productive == result_on.productive
        assert on.equivalent_to(off)

    def test_flag_off_retains_nothing(self):
        perf.flags.graft_log = False
        perf.stats.reset()
        system = build_workload()
        engine = RewritingEngine(system)
        result = engine.run()
        assert result.productive > 0
        assert len(engine.kernel.log) == 0
        assert engine.kernel._seed_wire is None
        assert perf.stats.graft_log_records == 0

    def test_flag_on_retains_every_productive_step(self):
        system = build_workload()
        engine = RewritingEngine(system)
        result = engine.run()
        assert len(engine.kernel.log) == result.productive
        assert perf.stats.graft_log_records == result.productive

    def test_flag_off_checkpoint_still_resumes_from_snapshot(self, tmp_path):
        reference = reference_fixpoint()
        perf.flags.graft_log = False
        bundle_path = tmp_path / "bare.ckpt"
        checkpoint_midway(bundle_path)

        bundle = load_bundle(str(bundle_path))
        assert not bundle.replayable
        with pytest.raises(BundleError):
            replay_documents(bundle)

        resumed = resume(str(bundle_path))
        result = resumed.run()
        assert result.status is RunStatus.TERMINATED
        assert reference.equivalent_to(resumed.system)


class TestConstantServiceSharing:
    """Satellite: constant_service shares one frozen forest across calls."""

    def test_calls_share_the_frozen_forest(self):
        service = constant_service("c", Forest([parse_tree("k{1, 1, 1}")]))
        first = service.evaluate({})
        second = service.evaluate({})
        assert first.trees[0] is second.trees[0]  # no per-call copy
        assert perf.stats.constant_calls_shared == 2

    def test_calls_allocate_no_nodes(self):
        service = constant_service("c", Forest([parse_tree("k{v}")]))
        service.evaluate({})  # warm anything lazy
        stamp = current_stamp()  # (peeking burns one stamp itself)
        for _ in range(50):
            service.evaluate({})
        # Zero Node allocations in 50 calls: only our own peek advanced it.
        assert current_stamp() == stamp + 1

    def test_sharing_is_safe_under_materialization(self):
        """Grafting copies answers, so the shared forest stays pristine."""
        forest = Forest([parse_tree("k{1}")])
        service = constant_service("c", forest)
        system = AXMLSystem.build(documents={"d": "a{!c}", "e": "b{!c}"},
                                  services={"c": service})
        result = materialize(system)
        assert result.status is RunStatus.TERMINATED
        frozen = service.evaluate({})
        assert frozen.canonical_keys() == forest.reduced().canonical_keys()


class TestDeprecatedAliases:
    def test_result_types_are_unified(self):
        assert Status is RunStatus
        assert RuntimeStatus is RunStatus
        assert RewriteResult is RunResult
        assert RuntimeResult is RunResult

    def test_status_wire_values_unchanged(self):
        assert RunStatus.TERMINATED.value == "terminated"
        assert RunStatus.STABILIZED.value == "stabilized"
        assert RunStatus.DEGRADED.value == "degraded"
        assert RunStatus.BUDGET_EXHAUSTED.value == "budget"
        assert RunStatus.DEADLINE_EXHAUSTED.value == "deadline"


class TestKernelDirect:
    def test_kernel_requires_system_or_sites(self):
        with pytest.raises(ValueError):
            EvaluationKernel()

    def test_checkpoint_without_documents_rejected(self, tmp_path):
        kernel = EvaluationKernel(sites=[])
        with pytest.raises(ValueError):
            kernel.checkpoint(str(tmp_path / "x.ckpt"))

    def test_generation_tracks_productive_grafts(self):
        system = build_workload()
        engine = RewritingEngine(system)
        result = engine.run()
        assert engine.kernel.generation == result.productive
