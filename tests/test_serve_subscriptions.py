"""Exactness of subscription delta streams, oracled per graft prefix.

The serving contract: for every subscriber, *initial answers + pushed
deltas* is exactly the certain answer set of its query — not eventually,
but at every graft prefix of the run.  Monotonicity (Proposition 3.1)
makes the append-only stream sufficient; these tests check the stream
against the from-scratch :func:`evaluate_snapshot` oracle after every
single graft, on randomized systems from the three generator families,
clean and under deterministic fault injection.

A reduced-forest comparison is the right equivalence: a later answer may
strictly subsume an earlier one (the subtree it captured grew), so the
raw stream can be a superset of the reduced snapshot result.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml.query import evaluate_snapshot, parse_query
from paxml.runtime import FaultInjector, RuntimeConfig
from paxml.serve import TenantSession
from paxml.tree.document import Forest
from paxml.tree.parser import parse_tree
from paxml.workloads import (
    portal_system,
    random_acyclic_system,
    random_edges,
    tc_system,
)

CASES = (
    [("acyclic", seed) for seed in range(6)]
    + [("tc", seed) for seed in range(6)]
    + [("portal", seed) for seed in range(6)]
)


def build_system(family: str, seed: int):
    if family == "acyclic":
        return random_acyclic_system(2 + seed % 2, seed=seed, values_per_doc=3)
    if family == "tc":
        return tc_system(random_edges(4, 5 + seed % 3, seed=seed))
    return portal_system(3 + seed % 3, materialized_fraction=0.4,
                         n_irrelevant=2, seed=seed)


def case_id(case) -> str:
    return f"{case[0]}-{case[1]}"


def subscription_queries(system):
    """One subtree-capturing query per document of the system."""
    return {name: f"ans{{*T}} :- {name}/{doc.root.marking.name}{{*T}}"
            for name, doc in system.documents.items()}


def stream_forest(sub) -> Forest:
    """Everything the subscriber has been told so far, as a forest."""
    return Forest([parse_tree(text)
                   for text in sub.initial + sub.consumed])


class PrefixOracle:
    """A kernel graft hook checking every stream after every graft.

    Registered *after* the session's own hook, so by the time it runs the
    hub has already refreshed the logs for this graft — the stream it
    drains is the stream a subscriber could have observed at exactly this
    prefix.
    """

    def __init__(self, session, subscriptions):
        self.session = session
        self.subscriptions = subscriptions      # sub -> PositiveQuery
        self.checked = 0
        for sub in subscriptions:
            sub.consumed = list()
        session.kernel.graft_hooks.append(self.check)

    def check(self, document=None, node=None, inserted=None) -> None:
        environment = self.session.environment()
        for sub, query in self.subscriptions.items():
            sub.consumed.extend(sub.drain())
            expected = evaluate_snapshot(query, environment)
            got = stream_forest(sub)
            assert got.equivalent_to(expected), (
                f"stream for {query} diverged at graft prefix "
                f"{self.session.kernel.productive}:\n"
                f"  stream:   {got.pretty()}\n"
                f"  snapshot: {expected.pretty()}")
            self.checked += 1


def run_with_oracle(system, *, config=None, injector=None):
    session = TenantSession("oracle", system, config=config,
                            injector=injector)
    subscriptions = {}
    for name, text in subscription_queries(system).items():
        sub = session.subscribe(text)
        subscriptions[sub] = parse_query(text)
    oracle = PrefixOracle(session, subscriptions)
    oracle.check()      # prefix 0: the initial answers alone must be exact

    async def drive():
        while session.has_work():
            result = await session.run_slice(100_000)
            assert not result.failures
    asyncio.run(drive())
    oracle.check()      # and once more at the fixpoint
    return session, oracle


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_streams_exact_at_every_graft_prefix(case):
    family, seed = case
    system = build_system(family, seed)
    session, oracle = run_with_oracle(
        system, config=RuntimeConfig(concurrency=4 + seed % 4, seed=seed))
    assert oracle.checked > 0
    # The run actually grafted — the oracle saw real prefixes, not just
    # the two bookend checks.
    if session.kernel.productive:
        assert oracle.checked >= session.kernel.productive


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_streams_exact_under_fault_injection(case):
    family, seed = case
    system = build_system(family, seed)
    injector = FaultInjector(seed=seed, drop_rate=0.15, error_rate=0.2,
                             delay_rate=0.15, duplicate_rate=0.15,
                             delay_seconds=0.002, max_attempt=2)
    config = RuntimeConfig(concurrency=6, seed=seed, call_timeout=0.05,
                           max_attempts=5, backoff_base=0.001,
                           backoff_max=0.01, breaker_threshold=10_000)
    session, oracle = run_with_oracle(system, config=config,
                                      injector=injector)
    assert oracle.checked > 0
    assert not session.has_work()


def test_streams_follow_external_injections():
    """Injected grafts fan out through the same per-prefix contract."""
    system = tc_system([(1, 2), (2, 3)])
    session, oracle = run_with_oracle(system)
    before = oracle.checked
    # Extend the relation from outside the engine; the prefix oracle
    # fires on the injection itself and on every derived graft.
    session.inject("d0", [parse_tree("t{c0{3}, c1{4}}")])

    async def drive():
        while session.has_work():
            await session.run_slice(100_000)
    asyncio.run(drive())
    oracle.check()
    assert oracle.checked > before
    answers = {text for sub in oracle.subscriptions for text in
               (sub.initial + sub.consumed)}
    assert any("c1{4}" in text for text in answers)


def test_late_subscriber_gets_exact_initial():
    """A subscriber arriving mid-stream starts from the full current
    result, not from an empty stream."""
    system = tc_system(random_edges(4, 5, seed=7))

    async def drive(session):
        while session.has_work():
            await session.run_slice(100_000)

    session = TenantSession("late", system)
    asyncio.run(drive(session))
    text = subscription_queries(system)["d1"]
    sub = session.subscribe(text)
    expected = evaluate_snapshot(parse_query(text), session.environment())
    assert Forest([parse_tree(t) for t in sub.initial]
                  ).equivalent_to(expected)
    assert sub.drain() == []
