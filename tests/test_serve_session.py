"""Unit tests for the serve layer: sessions, admission, scoped metrics.

Covers the pieces the end-to-end suites exercise only implicitly:
per-tenant metric label scoping (and its clobber guard), admission
round-robin and budget arithmetic, injection validation, point-in-time
reads, and the suspend/resume lifecycle including subscription
continuity across the gap.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml.obs.metrics import Registry
from paxml.runtime import RuntimeConfig
from paxml.serve import AdmissionController, TenantBudget, TenantSession
from paxml.serve.session import SessionError
from paxml.system import materialize
from paxml.tree.parser import parse_tree
from paxml.workloads import random_edges, tc_system


def drive(session):
    async def _run():
        while session.has_work():
            await session.run_slice(100_000)
    asyncio.run(_run())


# ----------------------------------------------------------------------
# scoped metrics (satellite: per-tenant labels without clobbering)
# ----------------------------------------------------------------------


class TestScopedMetrics:
    def test_two_tenants_share_one_family(self):
        registry = Registry()
        for name in ("alpha", "beta"):
            session = TenantSession(name, tc_system([(1, 2), (2, 3)]),
                                    registry=registry)
            drive(session)
        collected = registry.collect()
        samples = collected["paxml_grafts_applied_total"]["samples"]
        by_tenant = {tuple(labels.items()): value
                     for labels, value in
                     ((s["labels"], s["value"]) for s in samples)}
        assert by_tenant[(("tenant", "alpha"),)] > 0
        assert by_tenant[(("tenant", "beta"),)] > 0

    def test_scoped_registration_does_not_clobber(self):
        registry = Registry()
        plain = registry.counter("requests_total", labelnames=("route",))
        scoped = registry.scoped(tenant="t0")
        # Same name, tenant-scoped: distinct label schema must raise, not
        # silently rebind the existing family.
        with pytest.raises(ValueError):
            scoped.counter("requests_total", labelnames=("route",))
        plain.labels(route="/x").inc()

    def test_slice_metrics_are_deltas_not_cumulative(self):
        registry = Registry()
        session = TenantSession("gamma", tc_system(random_edges(4, 5, seed=3)),
                                registry=registry)
        drive(session)     # many slices, each republishing
        session.publish_metrics()
        samples = registry.collect()["paxml_grafts_applied_total"]["samples"]
        [value] = [s["value"] for s in samples]
        assert value == session.kernel.productive


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------


class TestAdmission:
    def test_round_robin_rotation(self):
        control = AdmissionController()
        for name in ("a", "b", "c"):
            control.register(name)
        picks = [control.next_tenant(lambda t: True) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_rotation_skips_unrunnable(self):
        control = AdmissionController()
        for name in ("a", "b", "c"):
            control.register(name)
        picks = [control.next_tenant(lambda t: t != "b") for _ in range(4)]
        assert picks == ["a", "c", "a", "c"]
        assert control.next_tenant(lambda t: False) is None

    def test_total_budget_caps_the_lease(self):
        control = AdmissionController()
        control.register("a", TenantBudget(slice_attempts=10,
                                           total_attempts=25))
        assert control.lease("a") == 10
        control.settle("a", 10)
        control.settle("a", 10)
        assert control.lease("a") == 5
        control.settle("a", 5)
        assert control.lease("a") == 0
        assert control.exhausted("a")
        assert control.next_tenant(lambda t: True) is None

    def test_forget_keeps_rotation_sane(self):
        control = AdmissionController()
        for name in ("a", "b", "c"):
            control.register(name)
        assert control.next_tenant(lambda t: True) == "a"
        control.forget("a")
        picks = [control.next_tenant(lambda t: True) for _ in range(4)]
        assert picks == ["b", "c", "b", "c"]


# ----------------------------------------------------------------------
# session operations
# ----------------------------------------------------------------------


class TestSessionOps:
    def test_inject_rejects_undeclared_service(self):
        session = TenantSession("t", tc_system([(1, 2)]))
        with pytest.raises(SessionError, match="undeclared"):
            session.inject("d0", [parse_tree("x{!nosuch}")])

    def test_inject_rejects_unknown_targets(self):
        session = TenantSession("t", tc_system([(1, 2)]))
        with pytest.raises(SessionError, match="no document"):
            session.inject("nope", [parse_tree("x")])
        with pytest.raises(SessionError, match="no node uid"):
            session.inject("d0", [parse_tree("x")], parent_uid=10**9)

    def test_injected_graft_is_logged_and_replayable(self):
        session = TenantSession("t", tc_system([(1, 2), (2, 3)]))
        drive(session)
        session.inject("d0", [parse_tree("t{c0{3}, c1{4}}")])
        drive(session)
        # The external record went through the same log as engine grafts:
        # a prefix replay reconstructs the post-injection state exactly.
        final = session.read("d0")
        assert "c1{4}" in final["tree"]
        replayed = session.read_at("d0", final["grafts"])
        assert replayed["tree"] == final["tree"]

    def test_read_at_walks_the_prefix_lattice(self):
        session = TenantSession("t", tc_system(random_edges(4, 5, seed=11)))
        drive(session)
        total = session.read("d1")["grafts"]
        assert total > 0
        sizes = [len(session.read_at("d1", k)["tree"])
                 for k in range(total + 1)]
        # Monotone growth: every later prefix includes the earlier ones.
        assert sizes == sorted(sizes)
        assert session.read_at("d1", total)["tree"] == \
            session.read("d1")["tree"]
        with pytest.raises(SessionError, match="outside the readable"):
            session.read_at("d1", total + 1)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_suspend_resume_preserves_the_limit(self, tmp_path):
        reference = tc_system(random_edges(4, 6, seed=5))
        materialize(reference)

        session = TenantSession("t", tc_system(random_edges(4, 6, seed=5)),
                                config=RuntimeConfig(concurrency=3))

        async def partial():
            await session.run_slice(3)
        asyncio.run(partial())

        bundle = tmp_path / "t.bundle.jsonl"
        session.suspend(str(bundle))
        assert session.suspended
        with pytest.raises(SessionError, match="suspended"):
            asyncio.run(session.run_slice(10))

        session.resume()
        drive(session)
        assert reference.equivalent_to(session.system)

    def test_subscription_survives_suspension_without_duplicates(
            self, tmp_path):
        session = TenantSession("t", tc_system([(1, 2), (2, 3)]))
        sub = session.subscribe("p{*T} :- d1/r{*T}")
        drive(session)
        streamed = list(sub.initial) + sub.drain()
        assert streamed

        session.suspend(str(tmp_path / "t.bundle.jsonl"))
        session.resume()
        # Nothing changed while down: the re-primed evaluator re-derives
        # every answer, and the seen-filter must swallow all of them.
        assert sub.drain() == []

        session.inject("d0", [parse_tree("t{c0{3}, c1{4}}")])
        drive(session)
        fresh = sub.drain()
        assert fresh and not set(fresh) & set(streamed)

    def test_restart_from_bundle_path(self, tmp_path):
        first = TenantSession("t", tc_system([(1, 2), (2, 3)]))
        drive(first)
        tree = first.read("d1")["tree"]
        bundle = tmp_path / "t.bundle.jsonl"
        first.suspend(str(bundle))

        # A cold start (fresh process in spirit): system=None + bundle.
        revived = TenantSession("t", None, bundle_path=str(bundle))
        assert revived.suspended and not revived.has_work()
        revived.resume()
        assert revived.read("d1")["tree"] == tree
