"""Tests for regular-tree graphs (the Lemma 3.2 representation substrate)."""

import pytest

from paxml.tree import (
    Label,
    RegularTreeGraph,
    is_equivalent,
    parse_tree,
    reduced_copy,
    to_canonical,
)


def loop_graph() -> RegularTreeGraph:
    """a → {!f, a → …}: the denotation of Example 2.1's limit."""
    graph = RegularTreeGraph()
    a = graph.add_vertex(Label("a"))
    from paxml.tree import FunName

    f = graph.add_vertex(FunName("f"))
    graph.add_edge(a, f)
    graph.add_edge(a, a)
    graph.set_root(a)
    return graph


class TestConstruction:
    def test_from_tree_round_trip(self):
        tree = parse_tree("a{b{c}, d{1}}")
        graph = RegularTreeGraph.from_tree(tree)
        assert graph.vertex_count() == tree.size()
        assert graph.is_finite()
        unfolded = graph.unfold(graph.required_unfold_depth())
        assert is_equivalent(unfolded, tree)

    def test_edges_require_existing_vertices(self):
        graph = RegularTreeGraph()
        v = graph.add_vertex(Label("a"))
        with pytest.raises(KeyError):
            graph.add_edge(v, 999)

    def test_set_root_validates(self):
        graph = RegularTreeGraph()
        with pytest.raises(KeyError):
            graph.set_root(0)


class TestFiniteness:
    def test_tree_shaped_is_finite(self):
        graph = RegularTreeGraph.from_tree(parse_tree("a{b, c{d}}"))
        assert graph.is_finite()

    def test_loop_is_infinite(self):
        assert not loop_graph().is_finite()

    def test_unreachable_cycle_ignored(self):
        graph = RegularTreeGraph.from_tree(parse_tree("a{b}"))
        lonely = graph.add_vertex(Label("x"))
        graph.add_edge(lonely, lonely)
        assert graph.is_finite()  # the cycle is unreachable from the root

    def test_required_unfold_depth_raises_on_infinite(self):
        with pytest.raises(ValueError):
            loop_graph().required_unfold_depth()


class TestUnfolding:
    def test_unfold_depth_zero(self):
        assert loop_graph().unfold(0).size() == 1

    def test_unfold_prefixes_nest(self):
        graph = loop_graph()
        from paxml.tree import is_subsumed

        assert is_subsumed(graph.unfold(2), graph.unfold(3))
        assert is_subsumed(graph.unfold(3), graph.unfold(8))

    def test_unfold_shape(self):
        prefix = reduced_copy(loop_graph().unfold(3))
        assert to_canonical(prefix) == "a{!f, a{!f, a{!f, a}}}"


class TestSimulation:
    def test_finite_graphs_agree_with_tree_subsumption(self):
        g1 = RegularTreeGraph.from_tree(parse_tree("a{b}"))
        g2 = RegularTreeGraph.from_tree(parse_tree("a{b, c}"))
        assert RegularTreeGraph.simulates(g1, g2)
        assert not RegularTreeGraph.simulates(g2, g1)

    def test_infinite_self_equivalence(self):
        assert RegularTreeGraph.equivalent(loop_graph(), loop_graph())

    def test_unrolled_loop_equivalent_to_loop(self):
        # A two-vertex unrolling of the same infinite tree.
        from paxml.tree import FunName

        graph = RegularTreeGraph()
        a1 = graph.add_vertex(Label("a"))
        a2 = graph.add_vertex(Label("a"))
        f1 = graph.add_vertex(FunName("f"))
        f2 = graph.add_vertex(FunName("f"))
        graph.add_edge(a1, f1)
        graph.add_edge(a1, a2)
        graph.add_edge(a2, f2)
        graph.add_edge(a2, a1)
        graph.set_root(a1)
        assert RegularTreeGraph.equivalent(graph, loop_graph())

    def test_finite_prefix_subsumed_by_infinite(self):
        finite = RegularTreeGraph.from_tree(parse_tree("a{!f, a{!f}}"))
        assert RegularTreeGraph.simulates(finite, loop_graph())
        assert not RegularTreeGraph.simulates(loop_graph(), finite)

    def test_distinct_markings_not_similar(self):
        g1 = RegularTreeGraph.from_tree(parse_tree("a"))
        g2 = RegularTreeGraph.from_tree(parse_tree("b"))
        assert not RegularTreeGraph.simulates(g1, g2)
