"""Confluence as an executable oracle for the concurrent runtime.

Theorem 2.1 (via Lemma 2.1) says every fair invocation order of a
monotone system converges to the same limit ``[I]``.  The concurrent
engine realizes one particular family of orders — whatever the event
loop interleaves under a bounded concurrency window — so its result must
be subsumption-equivalent to the sequential ``rewrite_to_fixpoint``
result on *every* terminating positive system.  This file checks that on
50+ randomized positive systems from three generator families, clean and
under deterministic fault injection (drops, transient errors, delays,
duplicates on early attempts).

The fault runs also assert the no-silent-loss accounting: every injected
failing fault produced a failed attempt, and every failed attempt was
either retried or reported (here: retried, since the injector only
faults attempts the retry budget can outlast).
"""

from __future__ import annotations

import random

import pytest

from paxml.kernel import resume
from paxml.runtime import (
    AsyncRuntime,
    FaultInjector,
    RuntimeConfig,
    RuntimeStatus,
)
from paxml.system import RewritingEngine, materialize
from paxml.workloads import (
    portal_system,
    random_acyclic_system,
    random_edges,
    tc_system,
)

# 52 randomized positive systems across three shapes: layered acyclic
# (depth / fan-out variety), transitive closure over random relations
# (heavy cross-site data flow), and the jazz portal (call-in-answer
# nesting: FreeMusicDB answers embed new GetRating calls).
CASES = (
    [("acyclic", seed) for seed in range(20)]
    + [("tc", seed) for seed in range(16)]
    + [("portal", seed) for seed in range(16)]
)
assert len(CASES) >= 50


def build_system(family: str, seed: int):
    if family == "acyclic":
        return random_acyclic_system(2 + seed % 3, seed=seed, values_per_doc=3)
    if family == "tc":
        return tc_system(random_edges(5, 6 + seed % 4, seed=seed))
    return portal_system(5 + seed % 3, materialized_fraction=0.4,
                         n_irrelevant=2, seed=seed)


def case_id(case) -> str:
    return f"{case[0]}-{case[1]}"


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_concurrent_limit_equals_sequential_fixpoint(case):
    family, seed = case
    sequential = build_system(family, seed)
    outcome = materialize(sequential)
    assert outcome.terminated, "generator produced a divergent system"

    concurrent = build_system(family, seed)
    config = RuntimeConfig(concurrency=4 + seed % 5, seed=seed)
    result = AsyncRuntime(concurrent, config=config).run()
    assert result.status is RuntimeStatus.TERMINATED
    assert sequential.equivalent_to(concurrent), (
        f"concurrent limit diverged from [I] on {family}-{seed}"
    )


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_concurrent_limit_survives_fault_injection(case):
    family, seed = case
    sequential = build_system(family, seed)
    materialize(sequential)

    concurrent = build_system(family, seed)
    # Faults hit only attempts 1–2; with max_attempts=5 every call is
    # guaranteed two clean tries, so the run must fully converge.
    injector = FaultInjector(seed=seed, drop_rate=0.15, error_rate=0.2,
                             delay_rate=0.15, duplicate_rate=0.15,
                             delay_seconds=0.002, max_attempt=2)
    config = RuntimeConfig(concurrency=6, seed=seed, call_timeout=0.05,
                           max_attempts=5, backoff_base=0.001,
                           backoff_max=0.01, breaker_threshold=10_000)
    result = AsyncRuntime(concurrent, config=config, injector=injector).run()

    assert result.status is RuntimeStatus.TERMINATED
    assert not result.failures
    assert sequential.equivalent_to(concurrent), (
        f"fault-injected limit diverged from [I] on {family}-{seed}"
    )
    metrics = result.metrics
    # No injected fault is silently dropped: every failing fault (drop or
    # transient error) failed exactly one attempt, and every failed
    # attempt was retried (nothing exhausted, nothing unaccounted).
    assert metrics.attempts_failed == injector.injected_failures
    assert metrics.attempts_failed == metrics.retries + metrics.exhausted
    assert metrics.exhausted == 0


# ----------------------------------------------------------------------
# Checkpoint/resume as a fair continuation (paxml.kernel)
# ----------------------------------------------------------------------
#
# Theorem 2.1 again, now across a process boundary: the state after any
# fair prefix of invocations, snapshotted to a bundle and resumed by ANY
# fair continuation — the same engine, the other engine, or a graft-log
# replay — must still converge to the sequential ``[I]``.  The cut point
# is a per-case pseudo-random step, so over the 52 cases the suspension
# lands everywhere from the first invocation to just before fixpoint.


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_checkpoint_at_random_step_preserves_the_limit(case, tmp_path):
    family, seed = case
    sequential = build_system(family, seed)
    outcome = materialize(sequential)
    assert outcome.terminated

    cut = random.Random(seed).randrange(1, max(2, outcome.steps))
    suspended = build_system(family, seed)
    engine = RewritingEngine(suspended)
    engine.run(max_steps=cut)
    bundle = tmp_path / "cut.ckpt"
    engine.checkpoint(str(bundle))

    # Rotate the continuation: replayed-sequential, plain-sequential, or
    # concurrent — all three are fair, so all three must agree with [I].
    mode = seed % 3
    if mode == 0:
        resumed = resume(str(bundle), replay=True)
        result = resumed.run()
    elif mode == 1:
        resumed = resume(str(bundle))
        result = resumed.run()
    else:
        resumed = resume(str(bundle), engine="async",
                         config=RuntimeConfig(concurrency=3 + seed % 3,
                                              seed=seed))
        result = resumed.run()
    assert result.status is RuntimeStatus.TERMINATED
    assert result.resumed_from == str(bundle)
    assert sequential.equivalent_to(resumed.system), (
        f"resumed (mode {mode}) limit diverged from [I] on {family}-{seed} "
        f"cut at step {cut}"
    )


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_crash_resume_survives_fault_injection(case, tmp_path):
    """Crash a fault-injected concurrent run, finish from its last bundle.

    The first run is cut by an invocation budget (standing in for the
    crash — in-flight outcomes are discarded exactly as ``kill -9``
    would); periodic checkpointing means the bundle may be several steps
    behind the crash point.  The continuation — again under fault
    injection — must still reach ``[I]``.
    """
    family, seed = case
    sequential = build_system(family, seed)
    materialize(sequential)

    concurrent = build_system(family, seed)
    injector = FaultInjector(seed=seed, drop_rate=0.15, error_rate=0.2,
                             delay_rate=0.1, duplicate_rate=0.15,
                             delay_seconds=0.002, max_attempt=2)
    config = RuntimeConfig(concurrency=4, seed=seed, call_timeout=0.05,
                           max_attempts=5, backoff_base=0.001,
                           backoff_max=0.01, breaker_threshold=10_000,
                           max_invocations=2 + seed % 5)
    bundle = tmp_path / "crash.ckpt"
    AsyncRuntime(concurrent, config=config, injector=injector,
                 checkpoint_every=2, checkpoint_path=str(bundle)).run()

    retry_config = RuntimeConfig(concurrency=4, seed=seed + 1,
                                 call_timeout=0.05, max_attempts=5,
                                 backoff_base=0.001, backoff_max=0.01,
                                 breaker_threshold=10_000)
    if seed % 2:
        resumed = resume(str(bundle), engine="sequential")
        result = resumed.run()
    else:
        resumed = resume(str(bundle), engine="async", config=retry_config,
                         injector=FaultInjector(seed=seed + 1, drop_rate=0.15,
                                                error_rate=0.2,
                                                duplicate_rate=0.15,
                                                max_attempt=2))
        result = resumed.run()
    assert result.status is RuntimeStatus.TERMINATED
    assert not result.failures
    assert sequential.equivalent_to(resumed.system), (
        f"crash-resumed limit diverged from [I] on {family}-{seed}"
    )


# ----------------------------------------------------------------------
# Sharded multi-process runs (paxml.shard)
# ----------------------------------------------------------------------
#
# Theorem 2.1 a third time, now across *process* boundaries: a sharded
# run realizes yet another family of fair orders — each worker drives
# its owned sites, replicas converge through graft-log replication in
# bulk-synchronous rounds — so the merged forest must equal the
# sequential ``[I]`` for every shard count, under fault injection, and
# across a worker crash resumed from the coordinator's shipped history.
# Every case also asserts replay-validation: each worker's final replica
# must be reproducible from its seed plus its (shard-tagged) graft log.

from paxml.shard import run_sharded  # noqa: E402

# A cross-family slice: sharded runs cost a process fleet each, so the
# oracle runs a representative subset rather than all 52 cases.
SHARD_CASES = [("acyclic", 3), ("acyclic", 11), ("tc", 5), ("portal", 2),
               ("portal", 7)]


@pytest.mark.parametrize("nshards", [1, 2, 4])
@pytest.mark.parametrize("case", SHARD_CASES, ids=case_id)
def test_sharded_limit_equals_sequential_fixpoint(case, nshards):
    family, seed = case
    sequential = build_system(family, seed)
    materialize(sequential)

    sharded = build_system(family, seed)
    result = run_sharded(sharded, nshards,
                         config={"concurrency": 4, "seed": seed})
    assert not result.failures
    assert result.replay_ok, result.replay_errors
    assert result.equivalent_to(sequential), (
        f"{nshards}-shard limit diverged from [I] on {family}-{seed}"
    )


@pytest.mark.parametrize("case", SHARD_CASES, ids=case_id)
def test_sharded_limit_survives_fault_injection(case):
    family, seed = case
    sequential = build_system(family, seed)
    materialize(sequential)

    sharded = build_system(family, seed)
    result = run_sharded(
        sharded, 2,
        injector={"seed": seed, "drop_rate": 0.15, "error_rate": 0.2,
                  "duplicate_rate": 0.15, "max_attempt": 2},
        config={"concurrency": 4, "seed": seed, "call_timeout": 0.05,
                "max_attempts": 5, "backoff_base": 0.001,
                "backoff_max": 0.01, "breaker_threshold": 10_000})
    assert not result.failures
    assert result.replay_ok, result.replay_errors
    assert result.equivalent_to(sequential), (
        f"fault-injected sharded limit diverged from [I] on {family}-{seed}"
    )


@pytest.mark.parametrize("case", SHARD_CASES, ids=case_id)
def test_sharded_run_survives_worker_crash(case):
    """Kill worker 1 before round 1; the respawn must resume from the
    shipped-log prefix and the fleet still reach ``[I]``."""
    family, seed = case
    sequential = build_system(family, seed)
    materialize(sequential)

    sharded = build_system(family, seed)
    result = run_sharded(sharded, 2, crash_round=1, crash_shard=1,
                         config={"concurrency": 4, "seed": seed})
    assert not result.failures
    assert result.replay_ok, result.replay_errors
    # Fixpoints found in round 0 never reach the injection point; every
    # case that goes a second round must actually have crashed.
    assert result.rounds == 1 or result.respawns == 1
    assert result.equivalent_to(sequential), (
        f"crash-resumed sharded limit diverged from [I] on {family}-{seed}"
    )


@pytest.mark.parametrize("case", SHARD_CASES[:2], ids=case_id)
def test_sharded_sequential_engine_matches(case):
    family, seed = case
    sequential = build_system(family, seed)
    materialize(sequential)

    sharded = build_system(family, seed)
    result = run_sharded(sharded, 2, engine="sequential")
    assert result.replay_ok, result.replay_errors
    assert result.equivalent_to(sequential)
