"""Edge cases across modules: growth propagation, deep documents,
adversarial analysis inputs, and serializer corners."""

import pytest

from paxml import (
    AXMLSystem,
    Status,
    analyze_termination,
    invoke,
    is_subsumed,
    materialize,
    parse_query,
    parse_tree,
    to_canonical,
)
from paxml.query import evaluate_snapshot
from paxml.system.invocation import _propagate_growth, find_path
from paxml.tree import Document, label, val


class TestGrowthPropagation:
    def test_deep_growth_prunes_top_level_sibling(self):
        # Growing a subtree two levels down makes a *top-level* sibling
        # redundant: every ancestor level must be re-checked on growth.
        system = AXMLSystem.build(
            documents={"d": "root{x{y{u}}, x{y{!f}}}", "e": "src{v}"},
            services={"f": "u :- e/src"},
        )
        doc = system.documents["d"]
        assert len(doc.root.children) == 2  # x{y{u}} vs x{y{!f}}: incomparable
        invoke(system, doc, doc.root.function_nodes()[0])
        assert to_canonical(doc.root) == "root{x{y{!f, u}}}"

    def test_propagation_cleans_every_level(self):
        # a{p{q}, p{q{!f}}} — after f produces r under q, p{q} ⊆ p{q{r,!f}}.
        system = AXMLSystem.build(
            documents={"d": "a{p{q{s}}, p{q{!f}}}", "e": "src{v{1}}"},
            services={"f": "s :- e/src"},
        )
        doc = system.documents["d"]
        assert len(doc.root.children) == 2  # incomparable before the call
        call = doc.root.function_nodes()[0]
        invoke(system, doc, call)
        # q grew an s; now p{q{s}} is subsumed and pruned at the top level.
        assert len(doc.root.children) == 1
        assert to_canonical(doc.root) == "a{p{q{!f, s}}}"

    def test_find_path_on_deep_tree(self):
        deep = label("l0")
        node = deep
        for i in range(2000):
            child = label("x")
            node.add_child(child)
            node = child
        path = find_path(deep, node)
        assert path is not None and len(path) == 2001


class TestDeepDocuments:
    def test_subsumption_on_chains(self):
        def chain(n):
            text = "c"
            for _ in range(n):
                text = f"c{{{text}}}"
            return parse_tree(f"root{{{text}}}")

        # A shorter all-c chain embeds into a longer one (the leaf maps
        # midway); the longer one cannot map into the shorter.
        assert is_subsumed(chain(200), chain(300))
        assert not is_subsumed(chain(300), chain(200))

    def test_reduction_on_wide_flat_document(self):
        wide = label("r", *[label("t", val(i % 7)) for i in range(500)])
        from paxml.tree import reduced_copy

        reduced = reduced_copy(wide)
        assert len(reduced.children) == 7

    def test_snapshot_on_deep_pattern(self):
        doc = parse_tree("a{b{c{d{e{f{g{1}}}}}}}")
        query = parse_query("hit{$x} :- d/a{b{c{d{e{f{g{$x}}}}}}}")
        result = evaluate_snapshot(query, {"d": doc})
        assert len(result) == 1


class TestAdversarialAnalysis:
    def test_two_services_sharing_one_config_space(self):
        # Both emit each other with identical (empty) views; the analysis
        # must key configurations by service *name* to see the repeat only
        # along genuine chains.
        system = AXMLSystem.build(
            documents={"d": "root{!ping}"},
            services={"ping": "p{!pong} :- ", "pong": "q{!ping} :- "},
        )
        report = analyze_termination(system)
        assert report.diverges
        # Witness repeats the same service, two levels apart.
        assert report.witness[0][0] == report.witness[-1][0]

    def test_growth_blocked_by_preexisting_data(self):
        # The head's instantiation is already present: zero productive
        # steps, immediate termination.
        system = AXMLSystem.build(
            documents={"d": "a{x{y}, !f}"},
            services={"f": "x{y} :- "},
        )
        report = analyze_termination(system)
        assert report.terminates
        assert report.productive_steps == 0

    def test_guarded_unary_counter_terminates(self):
        # f nests only while it sees the guard label directly above.
        system = AXMLSystem.build(
            documents={"d": "go{stop{!f}}"},
            services={"f": "inner{!f} :- context/stop"},
        )
        report = analyze_termination(system)
        assert report.terminates
        assert "inner{!f}" in to_canonical(report.system.documents["d"].root)

    def test_cross_document_feeding_loop_terminates(self):
        # d1 feeds d2 feeds d1, but the data domain is finite: saturation.
        system = AXMLSystem.build(
            documents={"d1": "r{t{1}, !f}", "d2": "r{!g}"},
            services={
                "f": "t{$x} :- d2/r{t{$x}}",
                "g": "t{$x} :- d1/r{t{$x}}",
            },
        )
        report = analyze_termination(system)
        assert report.terminates
        assert "t{1}" in to_canonical(report.system.documents["d2"].root)

    def test_value_only_growth(self):
        system = AXMLSystem.build(
            documents={"d": 'a{!f}', "e": 'src{"x", "y", 1, 2.5, true}'},
            services={"f": "got{$v} :- e/src{$v}"},
        )
        outcome = materialize(system)
        assert outcome.status is Status.TERMINATED
        text = to_canonical(system.documents["d"].root)
        for piece in ('got{"x"}', "got{1}", "got{2.5}", "got{true}"):
            assert piece in text


class TestUnicodeAndEscaping:
    def test_unicode_labels_and_values(self):
        tree = parse_tree('répertoire{`étiquette à espaces`{"Dvořák — 🎷"}}')
        again = parse_tree(to_canonical(tree))
        assert to_canonical(again) == to_canonical(tree)

    def test_unicode_through_queries(self):
        doc = parse_tree('a{titre{"café"}}')
        query = parse_query('hit{$t} :- d/a{titre{$t}}')
        result = evaluate_snapshot(query, {"d": doc})
        assert to_canonical(result.trees[0]) == 'hit{"café"}'

    def test_unicode_through_xml(self):
        from paxml.tree import from_xml_string, is_equivalent, to_xml_string

        tree = parse_tree('a{t{"Dvořák"}}')
        assert is_equivalent(tree, from_xml_string(to_xml_string(tree)))
