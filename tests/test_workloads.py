"""Tests for the workload generators (determinism + declared shapes)."""

import pytest

from paxml.system import Status, is_acyclic, materialize
from paxml.tree import canonical_key, is_reduced
from paxml.workloads import (
    chain_edges,
    cycle_edges,
    duplicate_heavy_tree,
    fanout_divergent_system,
    grid_edges,
    nesting_chain_system,
    portal_system,
    random_acyclic_system,
    random_edges,
    random_tree,
    relation_tree,
    tc_system,
)


class TestTrees:
    def test_exact_size(self):
        for size in (1, 5, 50, 300):
            assert random_tree(size, seed=7).size() == size

    def test_deterministic(self):
        assert canonical_key(random_tree(80, seed=3)) == \
            canonical_key(random_tree(80, seed=3))
        assert canonical_key(random_tree(80, seed=3)) != \
            canonical_key(random_tree(80, seed=4))

    def test_duplicate_heavy_reduces_substantially(self):
        tree = duplicate_heavy_tree(300, seed=2)
        from paxml.tree import reduced_copy

        assert reduced_copy(tree).size() < tree.size()

    def test_function_pool(self):
        tree = random_tree(200, seed=5, function_pool=2)
        assert tree.function_nodes()

    def test_size_validation(self):
        with pytest.raises(ValueError):
            random_tree(0)


class TestEdges:
    def test_chain(self):
        assert chain_edges(3) == [(0, 1), (1, 2), (2, 3)]

    def test_cycle_closes(self):
        edges = cycle_edges(4)
        assert (3, 0) in edges and len(edges) == 4

    def test_random_edges_count_and_determinism(self):
        edges = random_edges(10, 15, seed=1)
        assert len(edges) == 15
        assert edges == random_edges(10, 15, seed=1)

    def test_grid(self):
        edges = grid_edges(3, 2)
        assert (0, 1) in edges and (0, 3) in edges
        assert len(edges) == 2 * 2 + 3  # horizontal + vertical

    def test_relation_tree_shape(self):
        tree = relation_tree([(1, 2)])
        assert tree.size() == 6  # r / t / c0 / 1 / c1 / 2


class TestSystems:
    def test_tc_system_matches_paper(self):
        system = tc_system(chain_edges(3))
        assert system.is_simple
        outcome = materialize(system)
        assert outcome.status is Status.TERMINATED

    def test_portal_counts(self):
        system = portal_system(10, materialized_fraction=0.0,
                               n_irrelevant=4, seed=1)
        names = [n.marking.name for _d, n in system.call_sites()]
        assert names.count("GetRating") == 10
        assert names.count("FreeMusicDB") == 4
        fully = portal_system(10, materialized_fraction=1.0,
                              n_irrelevant=0, seed=1)
        assert fully.call_count() == 0

    def test_portal_documents_reduced(self):
        system = portal_system(8, seed=2)
        for document in system.documents.values():
            assert is_reduced(document.root)

    def test_nesting_chain_family(self):
        terminating = nesting_chain_system(3, diverge=False)
        divergent = nesting_chain_system(3, diverge=True)
        assert terminating.is_simple and divergent.is_simple
        assert materialize(terminating).status is Status.TERMINATED
        assert materialize(divergent, max_steps=20).status is \
            Status.BUDGET_EXHAUSTED

    def test_fanout_divergent(self):
        system = fanout_divergent_system(2)
        assert materialize(system, max_steps=10).status is \
            Status.BUDGET_EXHAUSTED

    def test_random_acyclic_terminates(self):
        for seed in range(4):
            system = random_acyclic_system(4, seed=seed)
            assert is_acyclic(system)
            assert materialize(system).status is Status.TERMINATED

    def test_acyclic_lifts_all_values(self):
        system = random_acyclic_system(3, seed=9, values_per_doc=5)
        materialize(system)
        top = system.documents["doc2"].root
        items = [c for c in top.children if c.is_label]
        assert len(items) <= 5  # duplicates in layer 0 merge under reduction
        assert items
