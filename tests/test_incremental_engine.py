"""Property tests for the incremental materialization engine.

Two families of guarantees:

* whole-engine agreement — materializing with the incremental machinery
  (persistent caches + per-site delta evaluation) yields documents
  equivalent to the seed from-scratch engine, under every scheduler;
* cache coherence — the persistent ``canonical_key`` and ``is_subsumed``
  caches agree with uncached recomputation after arbitrary graft
  sequences (version stamps must invalidate exactly what changed).
"""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from paxml import perf
from paxml.system import RewritingEngine, materialize
from paxml.tree.node import Node
from paxml.tree.reduction import canonical_key, canonical_key_of_reduced, reduced_copy
from paxml.tree.subsumption import _simulates, is_equivalent, is_subsumed
from paxml.workloads import (
    chain_edges,
    portal_system,
    random_acyclic_system,
    random_tree,
    tc_system,
)


@pytest.fixture(autouse=True)
def _restore_perf_flags():
    """Each test may flip engine flags; leave the process as it found it."""
    yield
    perf.flags.set_all(True)
    perf.clear_caches()
    perf.stats.reset()


def _materialize_with(factory, incremental, scheduler="round_robin", seed=None):
    perf.flags.set_all(incremental)
    perf.clear_caches()
    system = factory()
    result = RewritingEngine(system, scheduler=scheduler, seed=seed).run()
    assert result.terminated
    return system


# ----------------------------------------------------------------------
# engine agreement
# ----------------------------------------------------------------------


@given(st.integers(0, 1000),
       st.sampled_from(["round_robin", "lifo", "random"]))
@settings(max_examples=25, deadline=None)
def test_incremental_engine_agrees_with_seed_engine(seed, scheduler):
    """Incremental and from-scratch materialization reach equivalent
    fixpoints on random acyclic systems under every scheduler."""
    factory = lambda: random_acyclic_system(3, seed=seed)
    reference = _materialize_with(factory, incremental=False)
    subject = _materialize_with(factory, incremental=True,
                                scheduler=scheduler, seed=seed)
    assert subject.equivalent_to(reference)


@pytest.mark.parametrize("scheduler", ["round_robin", "lifo", "random"])
def test_incremental_engine_agrees_on_tc(scheduler):
    factory = lambda: tc_system(chain_edges(8))
    reference = _materialize_with(factory, incremental=False)
    subject = _materialize_with(factory, incremental=True,
                                scheduler=scheduler, seed=11)
    assert subject.equivalent_to(reference)


@pytest.mark.parametrize("scheduler", ["round_robin", "lifo", "random"])
def test_incremental_engine_agrees_on_portal(scheduler):
    factory = lambda: portal_system(8, n_irrelevant=3, seed=2)
    reference = _materialize_with(factory, incremental=False)
    subject = _materialize_with(factory, incremental=True,
                                scheduler=scheduler, seed=7)
    assert subject.equivalent_to(reference)


@given(st.integers(0, 300))
@settings(max_examples=10, deadline=None)
def test_delta_invocations_deliver_monotone_growth(seed):
    """Re-running the engine on its own fixpoint must be a pure no-op —
    the delta caches may not manufacture or lose answers."""
    perf.flags.set_all(True)
    perf.clear_caches()
    system = random_acyclic_system(3, seed=seed)
    materialize(system)
    before = system.signature()
    again = materialize(system)
    assert again.productive_steps == 0
    assert system.signature() == before


# ----------------------------------------------------------------------
# cache coherence under graft sequences
# ----------------------------------------------------------------------


def _random_graft_sequence(root: Node, rng: random.Random, grafts: int) -> None:
    """Graft copies of random subtrees at random positions, as the engine
    does (always fresh copies, never re-parented existing nodes)."""
    for _ in range(grafts):
        nodes = list(root.iter_nodes())
        target = rng.choice([n for n in nodes if not n.is_value] or [root])
        donor = rng.choice(nodes)
        target.add_child(donor.copy())


@given(st.integers(0, 1000), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_cached_canonical_key_matches_uncached(seed, grafts):
    """After arbitrary grafts, the version-stamped key cache agrees with
    the seed's reduce-then-key recomputation."""
    rng = random.Random(seed)
    perf.flags.set_all(True)
    perf.clear_caches()
    tree = random_tree(20, seed=seed, label_pool=2, value_pool=2)
    assert canonical_key(tree) == canonical_key_of_reduced(reduced_copy(tree))
    for _ in range(3):
        _random_graft_sequence(tree, rng, grafts)
        cached = canonical_key(tree)
        assert cached == canonical_key_of_reduced(reduced_copy(tree))
        # And a second read must serve the memoised key unchanged.
        assert canonical_key(tree) == cached


@given(st.integers(0, 1000), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_cached_subsumption_matches_uncached(seed, grafts):
    """The persistent simulation cache agrees with a cold recomputation
    in both directions after both trees mutate."""
    rng = random.Random(seed)
    perf.flags.set_all(True)
    perf.clear_caches()
    left = random_tree(15, seed=seed, label_pool=2, value_pool=2)
    right = random_tree(15, seed=seed + 1, label_pool=2, value_pool=2)
    for _ in range(3):
        _random_graft_sequence(left, rng, grafts)
        _random_graft_sequence(right, rng, grafts)
        for t1, t2 in [(left, right), (right, left), (left, left)]:
            cached = is_subsumed(t1, t2)
            perf.flags.subsumption_cache = False
            cold = _simulates(t1, t2, {})
            perf.flags.subsumption_cache = True
            assert cached == cold


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_equal_keys_iff_equivalent_under_cache(seed):
    """Canonical keys still characterise equivalence with caching on."""
    perf.flags.set_all(True)
    perf.clear_caches()
    t1 = random_tree(12, seed=seed, label_pool=2, value_pool=2)
    t2 = random_tree(12, seed=seed + 17, label_pool=2, value_pool=2)
    assert (canonical_key(t1) == canonical_key(t2)) == is_equivalent(t1, t2)
    assert canonical_key(t1) == canonical_key(t1.copy())


# ----------------------------------------------------------------------
# version-stamp invariants
# ----------------------------------------------------------------------


@given(st.integers(0, 1000), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_version_stamps_and_parents_stay_consistent(seed, grafts):
    """After any graft sequence: parent pointers match the child lists,
    and every node's version bounds its descendants' versions."""
    rng = random.Random(seed)
    tree = random_tree(15, seed=seed)
    _random_graft_sequence(tree, rng, grafts)
    for node in tree.iter_nodes():
        for child in node.children:
            assert child.parent is node
            assert child.version <= node.version


def test_add_child_bumps_ancestors_only():
    from paxml.tree.node import label, val

    root = label("a", label("b"), label("c"))
    left, right = root.children
    v_root, v_left, v_right = root.version, left.version, right.version
    left.add_child(val(1))
    assert left.version > v_left
    assert root.version > v_root
    assert right.version == v_right
