"""Unit tests for the concurrent runtime (paxml.runtime).

Covers the robustness machinery piece by piece — retry policy, circuit
breaker, fault injector determinism — and the engine end to end: result
equivalence with the sequential engine, timeout/budget/deadline
degradation, duplicate idempotence, stale-call recovery mid-flight, and
the peer transport.  The confluence *property* test (≥50 randomized
systems) lives in test_runtime_equivalence.py.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml.runtime import (
    AsyncRuntime,
    CircuitBreaker,
    CircuitState,
    FaultInjector,
    FaultKind,
    LocalTransport,
    PeerTransport,
    RetryPolicy,
    RuntimeConfig,
    RuntimeStatus,
    materialize_async,
    materialize_peers_async,
)
from paxml.peers import Mode, Network, Peer
from paxml.system import AXMLSystem, materialize
from paxml.system.invocation import StaleCallError, call_path
from paxml.tree.reduction import canonical_key
from paxml.workloads import chain_edges, portal_system, tc_system


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        config = RuntimeConfig(backoff_base=0.1, backoff_factor=2.0,
                               backoff_max=0.5, jitter=0.0)
        policy = RetryPolicy(config)
        delays = [policy.delay("f", 1, attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_per_coordinates(self):
        config = RuntimeConfig(jitter=0.5, seed=42)
        policy = RetryPolicy(config)
        first = policy.delay("f", 7, 2)
        assert policy.delay("f", 7, 2) == first           # pure function
        assert policy.delay("f", 8, 2) != first           # site matters
        other = RetryPolicy(RuntimeConfig(jitter=0.5, seed=43))
        assert other.delay("f", 7, 2) != first            # seed matters

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(concurrency=0)
        with pytest.raises(ValueError):
            RuntimeConfig(max_attempts=0)
        with pytest.raises(ValueError):
            RuntimeConfig(call_timeout=-1.0)


class TestCircuitBreaker:
    KEY = ("peer", "svc")

    def test_opens_after_threshold_and_recovers(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        for now in (0.0, 1.0):
            assert breaker.record_failure(self.KEY, now) is False
        assert breaker.record_failure(self.KEY, 2.0) is True
        assert breaker.trips == 1
        assert breaker.state_of(self.KEY) is CircuitState.OPEN
        allowed, retry_after = breaker.allow(self.KEY, 5.0)
        assert not allowed and retry_after == pytest.approx(7.0)
        # Cooldown elapsed: exactly one half-open probe is admitted.
        assert breaker.allow(self.KEY, 13.0) == (True, 0.0)
        assert breaker.allow(self.KEY, 13.0)[0] is False
        breaker.record_success(self.KEY)
        assert breaker.state_of(self.KEY) is CircuitState.CLOSED
        assert breaker.allow(self.KEY, 13.0) == (True, 0.0)

    def test_failed_probe_reopens_immediately(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0)
        breaker.record_failure(self.KEY, 0.0)
        breaker.record_failure(self.KEY, 0.0)
        assert breaker.state_of(self.KEY) is CircuitState.OPEN
        assert breaker.allow(self.KEY, 6.0) == (True, 0.0)  # probe
        breaker.record_failure(self.KEY, 6.0)
        assert breaker.state_of(self.KEY) is CircuitState.OPEN
        assert breaker.allow(self.KEY, 7.0)[0] is False

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(("p", "a"), 0.0)
        assert breaker.allow(("p", "a"), 1.0)[0] is False
        assert breaker.allow(("p", "b"), 1.0)[0] is True


class TestFaultInjector:
    def test_schedule_is_deterministic_and_order_independent(self):
        a = FaultInjector(seed=5, drop_rate=0.3, error_rate=0.3)
        b = FaultInjector(seed=5, drop_rate=0.3, error_rate=0.3)
        coords = [("f", site, attempt) for site in range(30)
                  for attempt in (1, 2)]
        forward = [a.decide(*c).kind for c in coords]
        backward = [b.decide(*c).kind for c in reversed(coords)]
        assert forward == list(reversed(backward))
        assert a.injected == b.injected

    def test_seed_changes_schedule(self):
        coords = [("f", site, 1) for site in range(50)]
        a = [FaultInjector(seed=1, drop_rate=0.5).peek(*c).kind for c in coords]
        b = [FaultInjector(seed=2, drop_rate=0.5).peek(*c).kind for c in coords]
        assert a != b

    def test_max_attempt_bounds_the_schedule(self):
        injector = FaultInjector(seed=0, drop_rate=1.0, max_attempt=2)
        assert injector.decide("f", 1, 1).kind is FaultKind.DROP
        assert injector.decide("f", 1, 2).kind is FaultKind.DROP
        assert injector.decide("f", 1, 3).kind is FaultKind.NONE

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_rate=1.5)


# ----------------------------------------------------------------------
# engine: happy paths
# ----------------------------------------------------------------------


def _tc_pair(n=6):
    return tc_system(chain_edges(n)), tc_system(chain_edges(n))


class TestEngineEquivalence:
    def test_tc_matches_sequential_fixpoint(self):
        sequential, concurrent = _tc_pair()
        materialize(sequential)
        result = materialize_async(concurrent, concurrency=4, seed=0)
        assert result.status is RuntimeStatus.TERMINATED
        assert result.terminated
        assert sequential.equivalent_to(concurrent)

    def test_portal_matches_sequential_fixpoint(self):
        reference = portal_system(10, materialized_fraction=0.0, seed=1)
        subject = portal_system(10, materialized_fraction=0.0, seed=1)
        materialize(reference)
        result = materialize_async(subject, concurrency=8, seed=0)
        assert result.status is RuntimeStatus.TERMINATED
        assert reference.equivalent_to(subject)
        assert result.metrics.in_flight_peak <= 8
        assert result.invocations_by_service.get("GetRating", 0) > 0

    def test_empty_system_terminates(self):
        system = AXMLSystem.build(documents={"d": "a{b}"}, services={})
        result = materialize_async(system)
        assert result.status is RuntimeStatus.TERMINATED
        assert result.invocations == 0

    def test_concurrency_window_is_respected(self):
        system = portal_system(12, materialized_fraction=0.0, seed=2)
        transport = LocalTransport(system, latency=0.005)
        result = materialize_async(system, transport=transport, concurrency=3)
        assert result.metrics.in_flight_peak <= 3

    def test_latency_histograms_are_recorded(self):
        system = portal_system(6, materialized_fraction=0.0, seed=3)
        transport = LocalTransport(system, latency={"GetRating": 0.005})
        result = materialize_async(system, transport=transport, concurrency=4)
        summary = result.metrics.snapshot()["latency"]["GetRating"]
        assert summary["count"] > 0
        assert summary["p50"] >= 0.005

    def test_run_reports_wall_clock(self):
        system, _ = _tc_pair(4)
        result = materialize_async(system)
        assert result.duration_seconds > 0.0


# ----------------------------------------------------------------------
# engine: failure paths
# ----------------------------------------------------------------------


class TestEngineRobustness:
    def test_timeouts_degrade_but_report_every_failure(self):
        system = portal_system(4, materialized_fraction=0.0, seed=4)
        transport = LocalTransport(system, latency=0.5)
        result = materialize_async(
            system, transport=transport, concurrency=4,
            call_timeout=0.02, max_attempts=2, backoff_base=0.001,
            breaker_threshold=1000)
        assert result.status is RuntimeStatus.DEGRADED
        assert result.failures
        metrics = result.metrics
        assert metrics.timeouts == metrics.attempts_failed
        assert metrics.attempts_failed == metrics.retries + metrics.exhausted
        assert metrics.exhausted == len(result.failures)
        for failure in result.failures:
            assert failure.attempts == 2

    def test_transient_errors_are_retried_to_success(self):
        reference = portal_system(8, materialized_fraction=0.0, seed=5)
        subject = portal_system(8, materialized_fraction=0.0, seed=5)
        materialize(reference)
        injector = FaultInjector(seed=3, error_rate=1.0, max_attempt=1)
        result = materialize_async(
            subject, injector=injector, concurrency=4, max_attempts=3,
            backoff_base=0.001, breaker_threshold=1000)
        assert result.status is RuntimeStatus.TERMINATED
        assert reference.equivalent_to(subject)
        metrics = result.metrics
        assert metrics.retries > 0 and metrics.exhausted == 0
        # every injected failure was retried — none silently dropped
        assert metrics.attempts_failed == injector.injected_failures
        assert metrics.attempts_failed == metrics.retries

    def test_duplicate_deliveries_are_idempotent(self):
        reference = portal_system(8, materialized_fraction=0.0, seed=6)
        subject = portal_system(8, materialized_fraction=0.0, seed=6)
        materialize(reference)
        injector = FaultInjector(seed=1, duplicate_rate=1.0, max_attempt=1)
        result = materialize_async(subject, injector=injector, concurrency=4)
        assert result.status is RuntimeStatus.TERMINATED
        assert reference.equivalent_to(subject)
        assert result.metrics.duplicate_deliveries > 0

    def test_circuit_breaker_trips_and_short_circuits(self):
        system = portal_system(6, materialized_fraction=0.0, seed=7)
        injector = FaultInjector(seed=2, error_rate=1.0)  # every attempt fails
        result = materialize_async(
            system, injector=injector, concurrency=4, max_attempts=4,
            backoff_base=0.001, breaker_threshold=2, breaker_cooldown=0.01)
        assert result.status is RuntimeStatus.DEGRADED
        metrics = result.metrics
        assert metrics.circuit_trips >= 1
        assert metrics.short_circuits >= 1
        # all GetRating/FreeMusicDB sites exhausted and were reported
        assert len(result.failures) == result.invocations
        assert metrics.attempts_failed == metrics.retries + metrics.exhausted

    def test_budget_exhaustion_leaves_sound_prefix(self):
        fixpoint, subject = _tc_pair(7)
        materialize(fixpoint)
        result = materialize_async(subject, max_invocations=3, concurrency=2)
        assert result.status is RuntimeStatus.BUDGET_EXHAUSTED
        assert not result.terminated
        assert subject.subsumed_by(fixpoint)

    def test_deadline_exhaustion_cancels_in_flight(self):
        fixpoint = portal_system(6, materialized_fraction=0.0, seed=8)
        subject = portal_system(6, materialized_fraction=0.0, seed=8)
        materialize(fixpoint)
        transport = LocalTransport(subject, latency=0.2)
        result = materialize_async(subject, transport=transport,
                                   concurrency=2, deadline=0.05)
        assert result.status is RuntimeStatus.DEADLINE_EXHAUSTED
        assert subject.subsumed_by(fixpoint)

    def test_unknown_service_is_reported_not_raised(self):
        # Bypass validation: the document calls a service nobody declares.
        system = AXMLSystem.build(documents={"d": "a{!ghost}"},
                                  services={"ghost": "leaf :- "})
        del system.services["ghost"]
        result = materialize_async(system)
        assert result.status is RuntimeStatus.DEGRADED
        assert len(result.failures) == 1
        assert "ghost" in result.failures[0].reason

    def test_stale_call_recovered_mid_flight(self):
        """A slow call whose node is pruned while in flight is dropped
        cleanly (StaleCallError recovery), and the limit is unaffected."""
        def build():
            return AXMLSystem.build(
                documents={"d": "r{a{!f}, !g}"},
                services={"f": "leaf :- ", "g": "a{c, !f} :- "})

        sequential = build()
        materialize(sequential)
        subject = build()
        # g grafts a{c, !f} instantly, which subsumes (and evicts) a{!f}
        # while the original slow !f is still in flight.
        transport = LocalTransport(subject, latency={"f": 0.05, "g": 0.0})
        runtime = AsyncRuntime(subject, transport=transport,
                               config=RuntimeConfig(concurrency=2, seed=0))
        result = runtime.run()
        assert result.status is RuntimeStatus.TERMINATED
        assert result.metrics.stale_calls >= 1
        assert sequential.equivalent_to(subject)


# ----------------------------------------------------------------------
# peer transport
# ----------------------------------------------------------------------


def _music_peers():
    portal = Peer("portal")
    portal.add_document("directory", '''directory{
        cd{title{"Body and Soul"}, !GetRating{"Body and Soul"}},
        !FreeMusicDB{type{"Jazz"}}}''')
    ratings = Peer("ratings")
    ratings.add_document("ratingsdb",
                         'db{entry{song{"Body and Soul"}, stars{"4"}}}')
    ratings.offer_service((
        "GetRating",
        'rating{$s} :- input/input{$t}, ratingsdb/db{entry{song{$t}, stars{$s}}}',
    ))
    music = Peer("music")
    music.add_document("musicdb",
                       'db{item{title{"So What"}}, item{title{"Freddie"}}}')
    music.offer_service((
        "FreeMusicDB",
        'cd{title{$t}, !GetRating{$t}} :- musicdb/db{item{title{$t}}}',
    ))
    return [portal, ratings, music]


def _peer_signature(peers):
    return {
        peer.name: {name: canonical_key(doc.root)
                    for name, doc in peer.documents.items()}
        for peer in peers
    }


class TestPeerTransport:
    def test_async_runtime_matches_network_simulator(self):
        simulated = _music_peers()
        Network(simulated, mode=Mode.PULL, seed=0).run()
        concurrent = _music_peers()
        result = materialize_peers_async(concurrent, concurrency=4, seed=0)
        assert result.status is RuntimeStatus.TERMINATED
        assert _peer_signature(simulated) == _peer_signature(concurrent)

    def test_peer_breaker_keys_use_owner_names(self):
        peers = _music_peers()
        transport = PeerTransport(peers)
        assert transport.peer_of("GetRating") == "ratings"
        assert transport.peer_of("FreeMusicDB") == "music"

    def test_arun_composes_with_existing_event_loop(self):
        peers = _music_peers()
        runtime = AsyncRuntime.for_peers(peers,
                                         config=RuntimeConfig(concurrency=4))

        async def driver():
            return await asyncio.wait_for(runtime.arun(), timeout=30)

        result = asyncio.run(driver())
        assert result.status is RuntimeStatus.TERMINATED
