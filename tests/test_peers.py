"""Tests for the P2P substrate (Section 6's distributed setting)."""

import pytest

from paxml.peers import Mode, Network, Peer, PeerError
from paxml.query import parse_query
from paxml.tree import Forest, parse_tree, to_canonical


def music_peers():
    portal = Peer("portal")
    portal.add_document("directory", '''directory{
        cd{title{"Body and Soul"}, !GetRating{"Body and Soul"}},
        !FreeMusicDB{type{"Jazz"}}}''')
    ratings = Peer("ratings")
    ratings.add_document("ratingsdb",
                         'db{entry{song{"Body and Soul"}, stars{"4"}}}')
    ratings.offer_service((
        "GetRating",
        'rating{$s} :- input/input{$t}, ratingsdb/db{entry{song{$t}, stars{$s}}}',
    ))
    music = Peer("music")
    music.add_document("musicdb",
                       'db{item{title{"So What"}}, item{title{"Freddie"}}}')
    music.offer_service((
        "FreeMusicDB",
        'cd{title{$t}, !GetRating{$t}} :- musicdb/db{item{title{$t}}}',
    ))
    return portal, ratings, music


class TestPeer:
    def test_reserved_document_names_rejected(self):
        peer = Peer("p")
        with pytest.raises(PeerError):
            peer.add_document("input", "a")

    def test_duplicate_document_rejected(self):
        peer = Peer("p")
        peer.add_document("d", "a")
        with pytest.raises(PeerError):
            peer.add_document("d", "b")

    def test_duplicate_service_rejected(self):
        peer = Peer("p")
        peer.offer_service(("s", "x :- "))
        with pytest.raises(PeerError):
            peer.offer_service(("s", "y :- "))

    def test_execute_uses_local_documents_only(self):
        _portal, ratings, _music = music_peers()
        answers = ratings.execute("GetRating",
                                  parse_tree('input{"Body and Soul"}'), None)
        assert to_canonical(answers.trees[0]) == 'rating{"4"}'

    def test_execute_unknown_service(self):
        peer = Peer("p")
        with pytest.raises(PeerError):
            peer.execute("nope", parse_tree("input"), None)

    def test_snapshot_query(self):
        portal, _r, _m = music_peers()
        query = parse_query('t{$x} :- directory/directory{cd{title{$x}}}')
        result = portal.snapshot_query(query)
        assert len(result) == 1


class TestNetwork:
    def test_undeclared_remote_service_rejected(self):
        lonely = Peer("lonely")
        lonely.add_document("d", "a{!ghost}")
        with pytest.raises(PeerError):
            Network([lonely])

    def test_duplicate_service_across_peers_rejected(self):
        p1, p2 = Peer("p1"), Peer("p2")
        p1.offer_service(("s", "x :- "))
        p2.offer_service(("s", "x :- "))
        with pytest.raises(PeerError):
            Network([p1, p2])

    def test_pull_converges(self):
        portal, ratings, music = music_peers()
        network = Network([portal, ratings, music], mode=Mode.PULL, seed=1)
        network.run()
        assert network.quiescent()
        text = to_canonical(portal.documents["directory"].root)
        assert 'rating{"4"}' in text
        assert 'title{"So What"}' in text

    def test_push_converges_to_same_state(self):
        results = {}
        for mode in (Mode.PULL, Mode.PUSH):
            portal, ratings, music = music_peers()
            network = Network([portal, ratings, music], mode=mode, seed=3)
            network.run()
            results[mode] = to_canonical(portal.documents["directory"].root)
        assert results[Mode.PULL] == results[Mode.PUSH]

    def test_push_uses_fewer_messages(self):
        stats = {}
        for mode in (Mode.PULL, Mode.PUSH):
            portal, ratings, music = music_peers()
            network = Network([portal, ratings, music], mode=mode, seed=3)
            stats[mode] = network.run().messages_delivered
        assert stats[Mode.PUSH] <= stats[Mode.PULL]

    def test_confluence_across_delivery_orders(self):
        signatures = set()
        for seed in range(5):
            portal, ratings, music = music_peers()
            network = Network([portal, ratings, music], mode=Mode.PULL,
                              seed=seed)
            network.run()
            signatures.add(to_canonical(portal.documents["directory"].root))
        assert len(signatures) == 1

    def test_transitive_remote_calls(self):
        # Answers carrying calls to a *third* peer get chased too.
        portal, ratings, music = music_peers()
        network = Network([portal, ratings, music], seed=0)
        network.run()
        text = to_canonical(portal.documents["directory"].root)
        # FreeMusicDB's answers embed GetRating calls for unknown songs:
        # they fire against ratings and (finding nothing) stay intensional.
        assert '!GetRating{"So What"}' in text

    def test_distributed_matches_centralised(self, jazz_portal):
        # The same scenario evaluated centrally and over the wire agrees
        # on the caller-visible portal document.
        from paxml.system import materialize

        materialize(jazz_portal)
        central = to_canonical(jazz_portal.documents["portal"].root)

        portal = Peer("portal")
        portal.add_document("portal", '''directory{
            cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
            cd{title{"Body and Soul"}, singer{"Billie Holiday"},
               !GetRating{"Body and Soul"}},
            promos{!FreeMusicDB{type{"Jazz"}}}}''')
        backend = Peer("backend")
        backend.add_document("ratingsdb",
                             'db{entry{song{"Body and Soul"}, stars{"****"}}}')
        backend.add_document("musicdb", 'db{item{title{"So What"}}}')
        backend.offer_service((
            "GetRating",
            'rating{$s} :- input/input{$t}, '
            'ratingsdb/db{entry{song{$t}, stars{$s}}}'))
        backend.offer_service((
            "FreeMusicDB", 'cd{title{$t}} :- musicdb/db{item{title{$t}}}'))
        network = Network([portal, backend], seed=9)
        network.run()
        assert to_canonical(portal.documents["portal"].root) == central

    def test_stats_populated(self):
        portal, ratings, music = music_peers()
        network = Network([portal, ratings, music], seed=2)
        stats = network.run()
        assert stats.requests > 0
        assert stats.responses > 0
        assert stats.grafts >= 3
        assert stats.messages_delivered == stats.messages_sent


class TestUnknownNames:
    """Unknown peers/services raise PeerError, not a bare KeyError."""

    def test_owner_of_unknown_service(self):
        portal, ratings, music = music_peers()
        network = Network([portal, ratings, music])
        with pytest.raises(PeerError, match="no peer offers"):
            network.owner_of("Nonexistent")

    def test_unknown_peer_lookup(self):
        portal, ratings, music = music_peers()
        network = Network([portal, ratings, music])
        with pytest.raises(PeerError, match="unknown peer"):
            network.peer("nobody")

    def test_grafted_call_to_unoffered_service_raises_peer_error(self):
        # Initial documents validate, but an *answer* may embed a call to
        # a service nobody offers; it must surface as a clear PeerError
        # when the network tries to route it (regression: used to be a
        # KeyError from the owner map).
        caller = Peer("caller")
        caller.add_document("d", "r{!make}")
        owner = Peer("owner")
        owner.offer_service(("make", "a{!ghost} :- "))
        network = Network([caller, owner], mode=Mode.PULL, seed=0)
        with pytest.raises(PeerError, match="'ghost'.*no peer offers"):
            network.run()


class TestPullPushEquivalence:
    """E12 across schedulers: the two delivery modes reach the same limit
    for every wire interleaving (≥5 scheduler seeds)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_modes_agree_for_every_seed(self, seed):
        states = {}
        for mode in (Mode.PULL, Mode.PUSH):
            portal, ratings, music = music_peers()
            network = Network([portal, ratings, music], mode=mode, seed=seed)
            network.run()
            assert network.quiescent()
            states[mode] = {
                peer.name: {name: to_canonical(doc.root)
                            for name, doc in peer.documents.items()}
                for peer in (portal, ratings, music)
            }
        assert states[Mode.PULL] == states[Mode.PUSH]


class TestStaleCallRecovery:
    """A call node pruned while its request is on the wire is recovered
    cleanly: the late response grafts nowhere and the run still quiesces."""

    @staticmethod
    def _peers():
        caller = Peer("caller")
        document = caller.add_document("d", "r{a{!f}, !g}")
        owner = Peer("owner")
        owner.offer_service(("f", "leaf :- "))
        # g's answer a{c, !f} subsumes the branch a{!f} holding the
        # original f-call, so grafting it evicts that branch — while f's
        # own request/response may still be in flight.
        owner.offer_service(("g", "a{c, !f} :- "))
        return caller, owner, document

    @pytest.mark.parametrize("seed", range(5))
    def test_network_recovers_and_quiesces(self, seed):
        from paxml.system.invocation import StaleCallError, call_path

        caller, owner, document = self._peers()
        original_call = next(n for n in document.root.function_nodes()
                             if n.marking.name == "f")
        network = Network([caller, owner], mode=Mode.PULL, seed=seed)
        network.run()
        assert network.quiescent()
        with pytest.raises(StaleCallError):
            call_path(document, original_call)
        text = to_canonical(document.root)
        assert "a{!f, c, leaf}" in text  # the re-grafted call got answered

    def test_all_seeds_reach_the_same_state(self):
        states = set()
        for seed in range(5):
            caller, owner, document = self._peers()
            Network([caller, owner], mode=Mode.PULL, seed=seed).run()
            states.add(to_canonical(document.root))
        assert len(states) == 1
