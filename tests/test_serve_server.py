"""End-to-end tests of the JSONL/TCP server through the client.

Each test boots a real :class:`PaxmlServer` on an ephemeral port inside
one event loop and drives it with :class:`ServeClient` — the same code
path as ``paxml serve`` / ``paxml client``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from paxml.serve import PaxmlServer, ServeClient, ServeError, ServerOptions

TC_SYSTEM = """
@document d0
r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}

@document d1
r{!g, !f}

@service g
t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}

@service f
t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}
"""

CLOSURE = "r{!f, !g, t{c0{1}, c1{2}}, t{c0{1}, c1{3}}, t{c0{2}, c1{3}}}"


def run_scenario(scenario, *, options=None):
    """Boot a server, run ``scenario(server, client)``, tear down."""
    async def main():
        server = PaxmlServer(options or ServerOptions())
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.shutdown()
    return asyncio.run(main())


def test_create_run_read_roundtrip():
    async def scenario(server, client):
        created = await client.create("alpha", TC_SYSTEM)
        assert created["documents"] == ["d0", "d1"]
        result = await client.run("alpha", timeout=30.0)
        assert result["fixpoint"]
        read = await client.read("alpha", "d1")
        assert read["tree"] == CLOSURE
    run_scenario(scenario)


def test_tenants_are_isolated():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.create("beta", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        await client.run("beta", timeout=30.0)
        # An injection into alpha must not leak into beta.
        await client.inject("alpha", "d0", "t{c0{3}, c1{4}}")
        await client.run("alpha", timeout=30.0)
        alpha = await client.read("alpha", "d1")
        beta = await client.read("beta", "d1")
        assert "c1{4}" in alpha["tree"]
        assert beta["tree"] == CLOSURE
        listing = await client.request("tenants")
        assert {t["tenant"] for t in listing["tenants"]} == {"alpha", "beta"}
    run_scenario(scenario)


def test_subscription_pushes_over_tcp():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        sub = await client.subscribe(
            "alpha", "pair{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}")
        await client.run("alpha", timeout=30.0)
        seen = set(sub["initial"])
        while len(seen) < 3:
            batch = await client.next_delta(sub["sub"], timeout=10.0)
            assert batch is not None, f"stream stalled at {sorted(seen)}"
            seen |= set(batch)
        assert seen == {"pair{c0{1}, c1{2}}", "pair{c0{2}, c1{3}}",
                        "pair{c0{1}, c1{3}}"}
        closed = await client.unsubscribe(sub["sub"])
        assert closed["closed"]
    run_scenario(scenario)


def test_errors_keep_the_connection_usable():
    async def scenario(server, client):
        with pytest.raises(ServeError, match="unknown tenant"):
            await client.read("ghost", "d0")
        with pytest.raises(ServeError, match="unknown op"):
            await client.request("frobnicate")
        with pytest.raises(ServeError):
            await client.create("bad/../name", TC_SYSTEM)
        with pytest.raises(ServeError, match="expected"):
            await client.create("alpha", "@chapter nope\nx")
        # After four failures the same connection still serves.
        created = await client.create("alpha", TC_SYSTEM)
        assert created["tenant"] == "alpha"
    run_scenario(scenario)


def test_suspend_and_transparent_resume(tmp_path):
    options = ServerOptions(spool_dir=str(tmp_path / "spool"))

    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        before = await client.read("alpha", "d1")
        suspended = await client.request("suspend", tenant="alpha")
        assert suspended["suspended"]
        stats = await client.request("tenants")
        assert stats["tenants"][0]["suspended"]
        # The next touch resumes the tenant without any client ceremony.
        after = await client.read("alpha", "d1")
        assert after["tree"] == before["tree"]
        stats = await client.request("stats", tenant="alpha")
        assert not stats["suspended"]
    run_scenario(scenario, options=options)


def test_shutdown_spools_and_restart_restores(tmp_path):
    spool = str(tmp_path / "spool")

    async def first(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        return (await client.read("alpha", "d1"))["tree"]
    tree = run_scenario(first, options=ServerOptions(spool_dir=spool))

    manifest = json.load(open(f"{spool}/manifest.json"))
    assert manifest["alpha"]["bundle"]

    async def second(server, client):
        listing = await client.request("tenants")
        assert listing["tenants"][0]["suspended"]
        read = await client.read("alpha", "d1")
        assert read["tree"] == tree
    run_scenario(second, options=ServerOptions(spool_dir=spool))


def test_idle_janitor_spools_idle_tenants(tmp_path):
    options = ServerOptions(spool_dir=str(tmp_path / "spool"),
                            idle_suspend=0.2)

    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        deadline = asyncio.get_event_loop().time() + 5.0
        while not server.sessions["alpha"].suspended:
            assert asyncio.get_event_loop().time() < deadline, \
                "janitor never spooled the idle tenant"
            await asyncio.sleep(0.05)
        # And the tenant comes back on touch, state intact.
        read = await client.read("alpha", "d1")
        assert read["tree"] == CLOSURE
    run_scenario(scenario, options=options)


def test_point_in_time_read_over_the_wire():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        grafts = (await client.read("alpha", "d1"))["grafts"]
        await client.inject("alpha", "d0", "t{c0{3}, c1{4}}")
        await client.run("alpha", timeout=30.0)
        then = await client.read("alpha", "d1", at=grafts)
        now = await client.read("alpha", "d1")
        assert then["historical"] and "c1{4}" not in then["tree"]
        assert "c1{4}" in now["tree"]
    run_scenario(scenario)


def test_concurrent_clients_one_tenant():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        second = await ServeClient.connect("127.0.0.1", server.port)
        try:
            sub = await second.subscribe(
                "alpha", "pair{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}")
            await client.run("alpha", timeout=30.0)
            seen = set(sub["initial"])
            while len(seen) < 3:
                batch = await second.next_delta(sub["sub"], timeout=10.0)
                assert batch is not None
                seen |= set(batch)
        finally:
            await second.close()
        # The subscriber's connection closing retired its subscription.
        deadline = asyncio.get_event_loop().time() + 5.0
        while server.sessions["alpha"].hub.subscriber_count():
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.01)
    run_scenario(scenario)
