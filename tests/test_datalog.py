"""Tests for the datalog substrate and its AXML simulation (Section 3.2)."""

import pytest

from paxml.datalog import (
    Program,
    Var,
    atom,
    compile_program,
    edb_facts,
    evaluate,
    facts_of_document,
    rule,
    same_generation_program,
    transitive_closure_program,
)
from paxml.system import Status, materialize
from paxml.workloads import chain_edges, cycle_edges, random_edges


class TestProgramModel:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            rule(atom("p", Var("x")), atom("q", Var("y")))

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ValueError):
            Program(facts=[atom("p", Var("x"))])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Program(rules=[rule(atom("p", 1), atom("q", Var("x"), Var("x"))),
                           rule(atom("q", 1), )],)

    def test_edb_idb_partition(self):
        program = transitive_closure_program([(1, 2)])
        assert program.idb_predicates() == {"tc"}
        assert program.edb_predicates() == {"edge"}

    def test_str_rendering(self):
        program = transitive_closure_program([(1, 2)])
        text = str(program)
        assert "edge(1, 2)." in text
        assert "tc(?x, ?y) :- " in text


class TestEngine:
    def test_tc_chain(self):
        program = transitive_closure_program(chain_edges(5))
        result = evaluate(program)
        assert len(result.relation("tc")) == 15  # 5+4+3+2+1

    def test_tc_cycle_saturates(self):
        program = transitive_closure_program(cycle_edges(4))
        result = evaluate(program)
        assert len(result.relation("tc")) == 16  # complete relation

    def test_naive_equals_semi_naive(self):
        program = transitive_closure_program(random_edges(8, 12, seed=5))
        assert evaluate(program, semi_naive=True).facts == \
            evaluate(program, semi_naive=False).facts

    def test_semi_naive_fewer_derivation_attempts(self):
        program = transitive_closure_program(chain_edges(12))
        semi = evaluate(program, semi_naive=True)
        naive = evaluate(program, semi_naive=False)
        assert semi.facts == naive.facts
        assert semi.rounds == naive.rounds

    def test_bodiless_rule(self):
        program = Program(rules=[rule(atom("p", 1)),
                                 rule(atom("q", Var("x")), atom("p", Var("x")))])
        result = evaluate(program)
        assert result.relation("q") == {(1,)}

    def test_constants_in_bodies(self):
        x = Var("x")
        program = Program(
            rules=[rule(atom("one_hop", x), atom("edge", 1, x))],
            facts=[atom("edge", 1, 2), atom("edge", 2, 3)],
        )
        assert evaluate(program).relation("one_hop") == {(2,)}

    def test_same_generation(self):
        program = same_generation_program(
            [("a", "p"), ("b", "p"), ("c", "q"), ("p", "r"), ("q", "r")])
        sg = evaluate(program).relation("sg")
        assert ("a", "b") in sg
        assert ("p", "q") in sg       # both children of r
        assert ("a", "c") in sg       # grandchildren of r
        assert ("a", "p") not in sg   # different generations


class TestCompilation:
    @pytest.mark.parametrize("edges", [
        chain_edges(4),
        cycle_edges(3),
        random_edges(6, 8, seed=1),
    ])
    def test_tc_simulation_matches_engine(self, edges):
        program = transitive_closure_program(edges)
        reference = evaluate(program)
        system = compile_program(program)
        assert system.is_simple
        outcome = materialize(system)
        assert outcome.status is Status.TERMINATED
        derived = {f for f in facts_of_document(system) if f[0] == "tc"}
        assert derived == {("tc", t) for t in reference.relation("tc")}

    def test_same_generation_simulation(self):
        program = same_generation_program([("a", "p"), ("b", "p"), ("p", "r")])
        reference = evaluate(program)
        system = compile_program(program)
        outcome = materialize(system)
        assert outcome.status is Status.TERMINATED
        derived = facts_of_document(system)
        want = {(p, t) for (p, t) in reference.facts
                if p in program.idb_predicates()}
        assert {f for f in derived if f[0] in program.idb_predicates()} == want

    def test_edb_document_round_trips(self):
        program = transitive_closure_program([(1, 2), (2, 3)])
        system = compile_program(program)
        assert facts_of_document(system, "edb") == edb_facts(program)

    def test_bodiless_rules_compile(self):
        program = Program(rules=[
            rule(atom("seed", 7)),
            rule(atom("out", Var("x")), atom("seed", Var("x"))),
        ])
        system = compile_program(program)
        materialize(system)
        assert ("out", (7,)) in facts_of_document(system)

    def test_string_constants(self):
        program = transitive_closure_program([("a", "b"), ("b", "c")])
        system = compile_program(program)
        materialize(system)
        assert ("tc", ("a", "c")) in facts_of_document(system)
