"""Tests for the ψ translation (Proposition 5.1)."""

import pytest

from paxml.analysis import (
    TranslationError,
    is_q_stable,
    strip_annotations,
    strip_forest,
    translate,
    weakly_relevant_calls,
)
from paxml.analysis.lazy import Verdict, full_query_result
from paxml.query import evaluate_snapshot, parse_query
from paxml.system import AXMLSystem, BlackBoxService, materialize
from paxml.tree import Forest, parse_tree, to_canonical


def both_results(system: AXMLSystem, query_text: str, max_steps: int = 50_000):
    """([q](I) natively, stripped [q'](I') via ψ) for a terminating system."""
    query = parse_query(query_text)
    native_system = system.copy()
    materialize(native_system, max_steps=max_steps)
    native = evaluate_snapshot(query, native_system.environment())

    translated = translate(system, query)
    materialize(translated.system, max_steps=max_steps)
    via_psi = evaluate_snapshot(translated.query, translated.system.environment())
    return strip_forest(native), strip_forest(via_psi), translated


class TestCorrectness:
    def test_leaf_regex_path_test(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}, a{x{y}}}"})
        native, via_psi, tr = both_results(system, "found :- d/lib{[a.b.c]}")
        assert native.equivalent_to(via_psi)
        assert len(native) == 1
        assert tr.preserves_simplicity

    def test_regex_with_label_variable_child(self):
        system = AXMLSystem.build(
            documents={"d": "lib{a{b{c{x{1}}}, c{y{2}}}, a{c{z{3}}}}"})
        native, via_psi, tr = both_results(
            system, "hit{@l} :- d/lib{[a.b?.c]{@l}}")
        assert native.equivalent_to(via_psi)
        assert {to_canonical(t) for t in native} == {"hit{x}", "hit{y}", "hit{z}"}
        assert tr.preserves_simplicity

    def test_star_regex_with_value_binding(self):
        system = AXMLSystem.build(
            documents={"d": "lib{a{b{c{x{1}}}, c{y{2}}}, a{c{z{3}}}}"})
        native, via_psi, tr = both_results(
            system, "hit{$v} :- d/lib{[a.(b|c)*.c]{@w{$v}}}")
        assert native.equivalent_to(via_psi)
        assert len(native) == 3

    def test_wildcard_regex(self):
        system = AXMLSystem.build(documents={"d": "r{a{b{1}}, c{d{2}}, e{3}}"})
        native, via_psi, _tr = both_results(system, "hit{$v} :- d/r{[_._]{$v}}")
        assert native.equivalent_to(via_psi)
        assert len(native) == 2

    def test_regex_inside_service_body(self):
        system = AXMLSystem.build(
            documents={"d": "r{p{q{v{7}}}, !fill}", "e": "base{u{w{v{9}}}}"},
            services={"fill": "got{$x} :- e/[base.u.w]{v{$x}}"})
        native, via_psi, tr = both_results(system, "out{$x} :- d/r{got{$x}}")
        assert native.equivalent_to(via_psi)
        assert {to_canonical(t) for t in native} == {"out{9}"}
        assert tr.preserves_simplicity

    def test_multiple_regexes_share_the_propagation_service(self):
        system = AXMLSystem.build(documents={"d": "r{a{b{1}}, c{d{2}}}"})
        query = parse_query("pair{$x, $y} :- d/r{[a.b]{$x}}, d/r{[c.d]{$y}}")
        translated = translate(system, query)
        assert "axprop" in translated.system.services
        materialize(translated.system, max_steps=20_000)
        result = evaluate_snapshot(translated.query,
                                   translated.system.environment())
        assert {to_canonical(t) for t in strip_forest(result)} == {"pair{1, 2}"}

    def test_join_variable_through_payload(self):
        # The end-node binding joins with a non-regex atom.
        system = AXMLSystem.build(
            documents={"d": "r{p{q{k{1}}}, p{q{k{2}}}}", "e": "allow{1}"})
        native, via_psi, _ = both_results(
            system, "hit{$v} :- d/r{[p.q]{k{$v}}}, e/allow{$v}")
        assert native.equivalent_to(via_psi)
        assert {to_canonical(t) for t in native} == {"hit{1}"}

    def test_shared_variable_inside_regex_children(self):
        system = AXMLSystem.build(
            documents={"d": "r{p{q{k{1}, m{1}}}, p{q{k{1}, m{2}}}}"})
        native, via_psi, _ = both_results(
            system, "hit{$v} :- d/r{[p.q]{k{$v}, m{$v}}}")
        assert native.equivalent_to(via_psi)
        assert {to_canonical(t) for t in native} == {"hit{1}"}


class TestPreservation:
    def test_identity_when_no_regex(self, example_3_2):
        query = parse_query("pair{$x} :- d1/r{t{c0{$x}}}")
        translated = translate(example_3_2, query)
        assert "axprop" not in translated.system.services
        assert translated.preserves_simplicity
        # map_calls covers every original call.
        calls = [node for _d, node in example_3_2.call_sites()]
        assert len(translated.map_calls(calls)) == len(calls)

    def test_simplicity_preserved_for_simple_inputs(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}}"})
        translated = translate(system, parse_query("f{@l} :- d/lib{[a.b]{@l}}"))
        assert translated.preserves_simplicity
        assert translated.system.is_simple

    def test_q_stability_transfers(self):
        # Prop. 5.1(4): I q-stable iff I' q'-stable, on a stable instance.
        system = AXMLSystem.build(
            documents={"d": "lib{a{b{c}}, other{!h}}", "e": "x{y{1}}"},
            services={"h": "z{$v} :- e/x{y{$v}}"})
        query = parse_query("found :- d/lib{[a.b]}")
        assert is_q_stable(system, query) is Verdict.YES
        translated = translate(system, query)
        # The annotation calls are *needed* to derive the facts q' reads,
        # so stability of the translated system is evaluated after the
        # annotations settle:
        materialize(translated.system, max_steps=20_000)
        assert is_q_stable(translated.system, translated.query) is Verdict.YES

    def test_call_mapping_for_unneeded_sets(self):
        system = AXMLSystem.build(
            documents={"d": "lib{a{b{c}}, other{!h}}", "e": "x{y{1}}"},
            services={"h": "z{$v} :- e/x{y{$v}}"})
        query = parse_query("found :- d/lib{[a.b]}")
        translated = translate(system, query)
        originals = [node for _d, node in system.call_sites()]
        images = translated.map_calls(originals)
        assert len(images) == len(originals)
        assert all(image.marking.name == "h" for image in images)

    def test_translation_size_is_polynomial(self):
        # A coarse PTIME sanity check: output size linear-ish in input.
        base = AXMLSystem.build(documents={"d": "lib{a{b{c{d{e}}}}}"})
        query = parse_query("found :- d/lib{[a.b.c.d.e]}")
        translated = translate(base, query)
        in_size = base.total_size()
        out_size = translated.system.total_size()
        rules = sum(len(s.queries) for s in translated.system.services.values()
                    if hasattr(s, "queries"))
        regex_spec = query.body[0].pattern.children[0].spec
        assert out_size <= 3 * in_size + 5
        assert rules <= 4 * len(regex_spec.nfa.moves()) + 4


class TestVocabularyGuards:
    def test_reserved_labels_rejected(self):
        system = AXMLSystem.build(documents={"d": "lib{axs{1}}"})
        with pytest.raises(TranslationError):
            translate(system, parse_query("f :- d/lib{[a.b]}"))

    def test_reserved_service_name_rejected(self):
        system = AXMLSystem.build(
            documents={"d": "lib{!axprop}"},
            services={"axprop": "x :- d/lib"})
        with pytest.raises(TranslationError):
            translate(system, parse_query("f :- d/lib{[a.b]}"))

    def test_black_box_services_rejected(self):
        system = AXMLSystem.build(
            documents={"d": "lib{!bb}"},
            services={"bb": BlackBoxService("bb", lambda env: Forest.empty())})
        with pytest.raises(TranslationError):
            translate(system, parse_query("f :- d/lib{[a.b]}"))

    def test_tree_variable_under_regex_rejected(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}}"})
        with pytest.raises(TranslationError):
            translate(system, parse_query("f{*T} :- d/lib{[a.b]{*T}}"))

    def test_function_variable_under_regex_rejected(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}}"})
        with pytest.raises(TranslationError):
            translate(system, parse_query("f{#g} :- d/lib{[a.b]{#g}}"))


class TestStripAnnotations:
    def test_strip_removes_facts_and_calls(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b}}"})
        translated = translate(system, parse_query("f :- d/lib{[a.b]}"))
        materialize(translated.system, max_steps=5_000)
        annotated = translated.system.documents["d"].root
        stripped = strip_annotations(annotated)
        assert to_canonical(stripped) == "lib{a{b}}"
