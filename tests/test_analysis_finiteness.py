"""Tests for q-finiteness (Propositions 3.2–3.3) and full results over
infinite regular semantics."""

import pytest

from paxml.analysis import (
    Finiteness,
    build_graph_representation,
    is_q_finite,
    snapshot_over_graphs,
)
from paxml.query import parse_query
from paxml.system import AXMLSystem
from paxml.tree import to_canonical
from paxml.workloads import nesting_chain_system


class TestQFiniteness:
    def test_simple_query_always_finite(self, example_2_1):
        report = is_q_finite(example_2_1, parse_query("out{@x} :- d/a{@x}"))
        assert report.finite
        assert "simple queries" in report.reason

    def test_acyclic_system_always_finite(self):
        system = AXMLSystem.build(
            documents={"d": "a{!g}", "e": "b{c{1}}"},
            services={"g": "x{*T} :- e/b{*T}"},
        )
        report = is_q_finite(system, parse_query("out{*X} :- d/a{*X}"))
        assert report.finite
        assert "acyclic" in report.reason

    def test_tree_var_over_divergent_subtree_is_infinite(self, example_2_1):
        report = is_q_finite(example_2_1, parse_query("out{*X} :- d/a{*X}"))
        assert report.status is Finiteness.INFINITE
        assert report.witnesses

    def test_tree_var_anchored_at_finite_part(self):
        system = AXMLSystem.build(
            documents={"d": "a{leaf{v{1}}, !f}"},
            services={"f": "a{!f} :- "},
        )
        report = is_q_finite(system, parse_query("out{*X} :- d/a{leaf{*X}}"))
        assert report.finite

    def test_unsatisfiable_body_is_finite(self, example_2_1):
        report = is_q_finite(example_2_1,
                             parse_query("out{*X} :- d/a{nothere{*X}}"))
        assert report.finite
        assert "empty" in report.reason

    def test_non_simple_system_terminating_is_finite(self, example_3_3):
        # Example 3.3 diverges ⇒ UNKNOWN; a terminating cousin is FINITE.
        report = is_q_finite(example_3_3, parse_query("out{*X} :- dp/a{*X}"),
                             max_steps=30)
        assert report.status is Finiteness.UNKNOWN

        terminating = AXMLSystem.build(
            documents={"dp": "a{a{b}, !g}"},
            services={"g": "c{*X} :- context/a{a{*X}}"},
        )
        report2 = is_q_finite(terminating, parse_query("out{*X} :- dp/a{*X}"))
        assert report2.finite

    def test_inequalities_respected(self, example_2_1):
        # The only satisfying assignments pin @x to 'a'; excluding it makes
        # the body unsatisfiable, hence finite despite the tree variable.
        query = parse_query("out{*X} :- d/a{@x{*X}}, @x != a")
        report = is_q_finite(example_2_1, query)
        assert report.finite


class TestSnapshotOverGraphs:
    def test_matches_infinite_structure(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        # Depth-3 nesting exists in [I] although the saturated pre-limit
        # only materialises two levels.
        query = parse_query("deep :- d/a{a{a{a}}}")
        result = snapshot_over_graphs(representation, query)
        assert {to_canonical(t) for t in result} == {"deep"}

    def test_function_nodes_visible(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        query = parse_query("call{#f} :- d/a{a{#f}}")
        result = snapshot_over_graphs(representation, query)
        assert {to_canonical(t) for t in result} == {"call{!f}"}

    def test_agrees_with_materialisation_when_finite(self, example_3_2):
        from paxml.query import evaluate_snapshot
        from paxml.system import materialize

        representation = build_graph_representation(example_3_2)
        query = parse_query("pair{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}")
        over_graphs = snapshot_over_graphs(representation, query)
        reference = example_3_2.copy()
        materialize(reference)
        direct = evaluate_snapshot(query, reference.environment())
        assert over_graphs.equivalent_to(direct)

    def test_non_simple_query_rejected(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        with pytest.raises(ValueError):
            snapshot_over_graphs(representation,
                                 parse_query("out{*X} :- d/a{*X}"))

    def test_regex_over_graph(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        # Arbitrarily deep a-paths exist in the infinite unfolding.
        query = parse_query("deep :- d/[a.a.a.a.a.a.a.a]")
        result = snapshot_over_graphs(representation, query)
        assert len(result) == 1

    def test_nesting_chain_counts(self):
        system = nesting_chain_system(3, diverge=True)
        representation = build_graph_representation(system)
        query = parse_query("probe :- d/root{n0{n1{n2{n2}}}}")
        assert len(snapshot_over_graphs(representation, query)) == 1
