"""Property-based tests for the tree algebra (Proposition 2.1).

Hypothesis drives random AXML trees through the subsumption / reduction /
lub laws the paper states or that the implementation relies on.
"""

from hypothesis import given, settings

from paxml.tree import (
    canonical_key,
    is_equivalent,
    is_reduced,
    is_subsumed,
    lub,
    parse_tree,
    reduced_copy,
)
from paxml.tree.node import Node
from paxml.tree.reduction import truncated_copy

from .conftest import tree_strategy

TREES = tree_strategy(allow_functions=True)


@given(TREES)
def test_subsumption_reflexive(tree: Node):
    assert is_subsumed(tree, tree)


@given(TREES, TREES, TREES)
@settings(max_examples=60)
def test_subsumption_transitive(t1: Node, t2: Node, t3: Node):
    if is_subsumed(t1, t2) and is_subsumed(t2, t3):
        assert is_subsumed(t1, t3)


@given(TREES)
def test_reduced_copy_is_reduced_and_equivalent(tree: Node):
    reduced = reduced_copy(tree)
    assert is_reduced(reduced)
    assert is_equivalent(tree, reduced)


@given(TREES)
def test_reduction_idempotent(tree: Node):
    once = reduced_copy(tree)
    twice = reduced_copy(once)
    assert canonical_key(once) == canonical_key(twice)
    assert once.size() == twice.size()


@given(TREES, TREES)
@settings(max_examples=80)
def test_canonical_key_characterises_equivalence(t1: Node, t2: Node):
    assert (canonical_key(t1) == canonical_key(t2)) == is_equivalent(t1, t2)


@given(TREES)
def test_copy_preserves_equivalence(tree: Node):
    assert is_equivalent(tree, tree.copy())


@given(TREES, TREES)
@settings(max_examples=60)
def test_lub_is_an_upper_bound(t1: Node, t2: Node):
    if t1.marking != t2.marking:
        return
    merged = lub(t1, t2)
    assert is_subsumed(t1, merged)
    assert is_subsumed(t2, merged)


@given(TREES, TREES)
@settings(max_examples=60)
def test_lub_commutative(t1: Node, t2: Node):
    if t1.marking != t2.marking:
        return
    assert is_equivalent(lub(t1, t2), lub(t2, t1))


@given(TREES)
def test_lub_idempotent(tree: Node):
    assert is_equivalent(lub(tree, tree), tree)


@given(TREES)
@settings(max_examples=60)
def test_subsumption_antisymmetric_up_to_equivalence(tree: Node):
    reduced = reduced_copy(tree)
    # Mutual subsumption of reduced trees means equal canonical keys.
    assert canonical_key(reduced) == canonical_key(tree)


@given(TREES)
def test_truncation_monotone(tree: Node):
    assert is_subsumed(truncated_copy(tree, 1), truncated_copy(tree, 2))
    assert is_subsumed(truncated_copy(tree, 2), tree)


@given(TREES)
def test_adding_a_child_strictly_grows(tree: Node):
    grown = tree.copy()
    if grown.is_value:
        return
    grown.add_child(parse_tree("zz_fresh{zz_inner}"))
    assert is_subsumed(tree, grown)
    assert not is_subsumed(grown, tree)
