"""Tests for the compact tree syntax parser and serializer round-trips."""

import pytest

from paxml.tree import (
    FunName,
    Label,
    ParseError,
    Value,
    parse_forest,
    parse_tree,
    to_canonical,
    to_compact,
    to_xml,
)


class TestParsing:
    def test_single_label(self):
        assert parse_tree("a").marking == Label("a")

    def test_nested(self):
        tree = parse_tree("a{b{c}, d}")
        assert tree.size() == 4
        assert [str(c.marking) for c in tree.children] == ["b", "d"]

    def test_string_value(self):
        tree = parse_tree('a{"hello world"}')
        assert tree.children[0].marking == Value("hello world")

    def test_escaped_string(self):
        tree = parse_tree(r'a{"say \"hi\""}')
        assert tree.children[0].marking == Value('say "hi"')

    def test_numbers(self):
        tree = parse_tree("a{1, 3.5, -2}")
        values = [c.marking.value for c in tree.children]
        assert values == [1, 3.5, -2]

    def test_booleans(self):
        tree = parse_tree("a{true, false}")
        assert [c.marking.value for c in tree.children] == [True, False]

    def test_boolean_label_needs_backquotes(self):
        tree = parse_tree("a{`true`}")
        assert tree.children[0].marking == Label("true")

    def test_function_node(self):
        tree = parse_tree('a{!GetRating{"Body and Soul"}}')
        call = tree.children[0]
        assert call.marking == FunName("GetRating")
        assert call.children[0].marking == Value("Body and Soul")

    def test_backquoted_label(self):
        assert parse_tree("`my label`").marking == Label("my label")

    def test_paper_running_example(self):
        tree = parse_tree('''
            directory{cd{title{"L'amour"}, singer{"Carla Bruni"},
                         rating{"***"}},
                      !FreeMusicDB{type{"Jazz"}},
                      !GetMusicMoz{!FindSingerOf{"Hotel California"}}}
        ''')
        assert tree.marking == Label("directory")
        assert len(tree.function_nodes()) == 3  # nested calls count too

    def test_comment(self):
        tree = parse_tree("a{ % comment to end of line\n b}")
        assert tree.size() == 2

    def test_empty_braces(self):
        assert parse_tree("a{}").size() == 1

    def test_forest(self):
        trees = parse_forest("a{b}, c, d{1}")
        assert len(trees) == 3

    def test_empty_forest(self):
        assert parse_forest("") == []


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "a{b", "a}b", "a{,}", '"unterminated', "`unterminated",
        "a{b} extra", "{}", "!", "a{1{b}}",
    ])
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_tree(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_tree("a{\n  b{\n}")
        assert "line" in str(excinfo.value)


class TestRoundTrips:
    @pytest.mark.parametrize("text", [
        "a",
        "a{b, c{d}}",
        'a{"v", 1, true, !f{2}}',
        "`space label`{x}",
        'a{"with \\"quotes\\""}',
    ])
    def test_compact_round_trip(self, text):
        tree = parse_tree(text)
        again = parse_tree(to_compact(tree))
        assert to_canonical(again) == to_canonical(tree)

    def test_canonical_sorts_children(self):
        assert to_canonical(parse_tree("a{c, b}")) == to_canonical(parse_tree("a{b, c}"))

    def test_xml_rendering(self):
        xml = to_xml(parse_tree('a{!f{"p"}, b}'))
        assert '<axml:call service="f">' in xml
        assert "<b></b>" in xml

    def test_truncated_repr(self):
        tree = parse_tree("a{" + ", ".join("b" for _ in range(100)) + "}")
        assert "…" in to_compact(tree, max_nodes=5)
