"""End-to-end reproductions of every worked example in the paper.

One test (or test class) per example / claim, cross-referenced to the
paper's section numbers.  These are the ground-truth anchors for the
benchmark harness in ``benchmarks/``.
"""

import pytest

from paxml import (
    AXMLSystem,
    Status,
    TerminationStatus,
    analyze_termination,
    build_graph_representation,
    evaluate_snapshot,
    fire_once,
    is_acyclic,
    is_equivalent,
    materialize,
    parse_query,
    parse_tree,
    reduced_copy,
    to_canonical,
)


class TestSection2Documents:
    def test_running_example_parses(self):
        """The Section 2.1 music directory."""
        document = parse_tree('''
            directory{cd{title{"L'amour"}, singer{"Carla Bruni"},
                         rating{"***"}},
                      cd{title{"Body and Soul"}, singer{"Billie Holiday"},
                         !GetRating{"Body and Soul"}},
                      cd{title{"Where or When"}, singer{"Peggy Lee"},
                         rating{"*****"}},
                      !FreeMusicDB{type{"Jazz"}},
                      !GetMusicMoz{!FindSingerOf{"Hotel California"}}}''')
        assert document.marking.name == "directory"
        # Call parameters may themselves contain function nodes.
        nested = [n for n in document.function_nodes()
                  if n.marking.name == "GetMusicMoz"]
        assert nested[0].children[0].is_function

    def test_reduction_example(self):
        """Section 2.1: a{b{c,c}, b{c,d,d}} is not reduced; a{b{c,d}} is."""
        tree = parse_tree("a{b{c, c}, b{c, d, d}}")
        assert to_canonical(reduced_copy(tree)) == "a{b{c, d}}"

    def test_get_rating_invocation(self):
        """Section 2.2's invocation walk-through: the rating is appended as
        a sibling of the GetRating call."""
        system = AXMLSystem.build(
            documents={
                "portal": '''directory{cd{title{"Body and Soul"},
                                          singer{"Billie Holiday"},
                                          !GetRating{"Body and Soul"}}}''',
                "store": 'db{pair{song{"Body and Soul"}, val{"****"}}}',
            },
            services={"GetRating":
                      'rating{$r} :- input/input{$s}, '
                      'db2/db{pair{song{$s}, val{$r}}}'.replace("db2", "store")},
        )
        materialize(system)
        cd = system.documents["portal"].root.children[0]
        child_texts = {to_canonical(c) for c in cd.children}
        assert 'rating{"****"}' in child_texts
        assert '!GetRating{"Body and Soul"}' in child_texts  # call survives


class TestExample21:
    """d/a{f} with f ≡ a{f}: the canonical divergent rewriting."""

    def test_rewriting_shape(self, example_2_1):
        materialize(example_2_1, max_steps=1)
        assert to_canonical(example_2_1.documents["d"].root) == "a{!f, a{!f}}"

    def test_never_terminates(self, example_2_1):
        assert materialize(example_2_1, max_steps=50).status is \
            Status.BUDGET_EXHAUSTED

    def test_decision_procedure_says_diverges(self, example_2_1):
        assert analyze_termination(example_2_1).diverges

    def test_limit_is_regular(self, example_2_1):
        representation = build_graph_representation(example_2_1)
        assert not representation.is_finite()
        assert representation.graph("d").vertex_count() <= 8


class TestExample31:
    """Snapshot semantics on the nested-relation document."""

    DOCS = {
        "d": parse_tree("r{t{a{1}, b{c{2}, d{3}}}, "
                        "t{a{1}, b{c{3}, e{3}}}, t{a{2}, b{c{2}, k{6}}}}"),
        "dp": parse_tree("a{1}"),
    }

    def test_label_variable_projection(self):
        query = parse_query("@z :- dp/a{$x}, d/r{t{a{$x}, b{@z}}}")
        result = evaluate_snapshot(query, self.DOCS)
        assert {to_canonical(t) for t in result} == {"c", "d", "e"}

    def test_tree_variable_projection(self):
        query = parse_query("*Z :- dp/a{$x}, d/r{t{a{$x}, b{*Z}}}")
        result = evaluate_snapshot(query, self.DOCS)
        assert {to_canonical(t) for t in result} == \
            {"c{2}", "d{3}", "c{3}", "e{3}"}


class TestExample32:
    """Transitive closure: any fair rewriting converges to TC(d0)."""

    def test_tc_computed(self, example_3_2):
        outcome = materialize(example_3_2)
        assert outcome.status is Status.TERMINATED
        pairs = evaluate_snapshot(
            parse_query("p{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"),
            example_3_2.environment(),
        )
        assert len(pairs) == 6  # TC of the 1→2→3→4 chain

    def test_system_is_simple_but_cyclic(self, example_3_2):
        assert example_3_2.is_simple
        assert not is_acyclic(example_3_2)

    def test_fire_once_misses_the_closure(self, example_3_2):
        """Section 4: under fire-once, the recursive rule never evaluates."""
        fire_once(example_3_2)
        pairs = evaluate_snapshot(
            parse_query("p{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"),
            example_3_2.environment(),
        )
        assert len(pairs) == 3  # just the copied base relation


class TestExample33:
    """Non-simple divergence with a non-regular limit."""

    def test_rewriting_sequence(self, example_3_3):
        materialize(example_3_3, max_steps=1)
        assert to_canonical(example_3_3.documents["dp"].root) == \
            "a{!g, a{a{b}}, a{b}}"
        materialize(example_3_3, max_steps=1)
        assert "a{a{a{b}}}" in to_canonical(example_3_3.documents["dp"].root)

    def test_single_call_keeps_producing(self, example_3_3):
        outcome = materialize(example_3_3, max_steps=6)
        assert outcome.status is Status.BUDGET_EXHAUSTED
        assert len(example_3_3.documents["dp"].root.function_nodes()) == 1

    def test_chain_depths_grow_linearly(self, example_3_3):
        materialize(example_3_3, max_steps=5)
        root = example_3_3.documents["dp"].root
        depths = sorted(child.depth() for child in root.children
                        if child.is_label)
        assert depths == [1, 2, 3, 4, 5, 6]


class TestSection5Nesting:
    """The nesting construction at the end of Section 5."""

    def test_nest_binary_relation(self):
        system = AXMLSystem.build(
            documents={
                "d": "r{t{a{1}, b{2}}, t{a{1}, b{3}}, t{a{2}, b{2}}}",
                "dnest": "r{!f}",
            },
            services={
                "f": "t{a{$x}, !g} :- d/r{t{a{$x}}}",
                "g": "b{$y} :- context/t{a{$x}}, d/r{t{a{$x}, b{$y}}}",
            },
        )
        assert system.is_simple
        outcome = materialize(system)
        assert outcome.status is Status.TERMINATED
        nested = system.documents["dnest"].root
        groups = {
            to_canonical(child)
            for child in nested.children if child.is_label
        }
        assert "t{!g, a{1}, b{2}, b{3}}" in groups
        assert "t{!g, a{2}, b{2}}" in groups
        # Crucially: group t{a{1},…} did NOT absorb b-values of a{2}.
        assert not any("a{1}" in g and "b{2}, b{3}" not in g for g in groups
                       if "a{1}" in g)


class TestLemma21Confluence:
    def test_reachable_states_below_any_continuation(self, example_3_2):
        """Lemma 2.1(i): if J terminates at J', any reachable K ⊆ J'."""
        terminal = example_3_2.copy()
        materialize(terminal)
        for steps in (1, 2, 3, 4):
            partial = example_3_2.copy()
            materialize(partial, max_steps=steps)
            assert partial.subsumed_by(terminal)
