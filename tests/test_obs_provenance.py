"""Provenance: every grafted node is explainable back to initial data."""

import pytest

from paxml import materialize, obs
from paxml.obs.events import Event, GRAFT_APPLIED
from paxml.obs.provenance import (
    ProvenanceIndex,
    clear_staged,
    stage_answer,
    take_staged,
)
from paxml.runtime import AsyncRuntime, LocalTransport, RuntimeConfig


def initial_uids(system):
    return {node.uid
            for document in system.documents.values()
            for node in document.root.iter_nodes()}


def current_uids(system):
    return initial_uids(system)


class TestStaging:
    def test_take_pops(self):
        stage_answer("k", rule="r", rule_index=1,
                     valuation={"$x": "1"}, matched=[3, 4])
        record = take_staged("k")
        assert record == {"rule": "r", "rule_index": 1,
                          "valuation": {"$x": "1"}, "matched": [3, 4]}
        assert take_staged("k") is None

    def test_clear(self):
        stage_answer("k", rule="r", rule_index=0, valuation={}, matched=[])
        clear_staged()
        assert take_staged("k") is None


class TestSequentialCompleteness:
    """The ISSUE acceptance criterion, on the E4 datalog scenario."""

    def test_every_grafted_node_has_a_derivation(self, example_3_2):
        before = initial_uids(example_3_2)
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            result = materialize(example_3_2)
        assert result.terminated
        index = recorder.provenance()
        grafted = current_uids(example_3_2) - before
        assert grafted, "the TC system must graft something"
        missing = {uid for uid in grafted if index.derivation_of(uid) is None}
        assert missing == set()
        # and nothing that was initial is claimed as derived
        assert index.derived_uids().isdisjoint(before)

    def test_derivations_carry_rule_and_matches(self, example_3_2):
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            materialize(example_3_2)
        index = recorder.provenance()
        for derivation in index.roots():
            assert derivation.service in ("f", "g")
            assert derivation.rule_index == 0
            assert ":-" in derivation.rule
            assert derivation.step >= 0
            assert derivation.matched, "query grafts must name their matches"
            assert derivation.valuation

    def test_chains_ground_out_in_initial_data(self, example_3_2):
        before = initial_uids(example_3_2)
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            materialize(example_3_2)
        index = recorder.provenance()
        for uid in sorted(index.derived_uids()):
            chain = index.explain(uid)
            assert chain[0].uid == uid
            assert any(entry.initial for entry in chain), (
                f"chain of {uid} never reaches initial data")
            for entry in chain:
                if entry.initial:
                    # anything the index can't derive must truly be initial
                    assert entry.uid in before

    def test_format_explain_mentions_rule_and_initial(self, example_3_2):
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            materialize(example_3_2)
        index = recorder.provenance()
        # the last graft of the TC run depends on earlier grafts
        text = index.format_explain(index.roots()[-1].root)
        assert "grafted by rule 0 of service" in text
        assert "initial data" in text
        assert "matched nodes" in text

    def test_explain_of_initial_node_is_single_initial_entry(
            self, example_3_2):
        uid = next(iter(initial_uids(example_3_2)))
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            materialize(example_3_2)
        chain = recorder.provenance().explain(uid)
        assert len(chain) == 1 and chain[0].initial


class TestAsyncCompleteness:
    def test_async_runs_emit_equivalent_provenance(self, example_3_2):
        before = initial_uids(example_3_2)
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            runtime = AsyncRuntime(
                example_3_2, transport=LocalTransport(example_3_2),
                config=RuntimeConfig(concurrency=4, seed=0))
            result = runtime.run()
        assert result.terminated
        index = recorder.provenance()
        grafted = current_uids(example_3_2) - before
        assert grafted
        missing = {uid for uid in grafted if index.derivation_of(uid) is None}
        assert missing == set()
        for derivation in index.roots():
            assert derivation.matched and derivation.rule


class TestIndexMechanics:
    def _two_tree_event(self):
        return Event(GRAFT_APPLIED, seq=9, ts=1.0, wall=2.0, data={
            "document": "d", "service": "s", "site": 0, "step": 3,
            "trees": [
                {"root": 10, "nodes": [10, 11], "parent": 1, "text": "a",
                 "rule": "a :- d/x", "rule_index": 0,
                 "valuation": {}, "matched": [1]},
                {"root": 20, "nodes": [20, 21], "parent": 1, "text": "b",
                 "rule": "b :- d/y", "rule_index": 1,
                 "valuation": {}, "matched": [2]},
            ]})

    def test_one_event_many_trees_are_distinct_derivations(self):
        # Both trees share the event's seq; they must still explain
        # independently (regression: the visited set used seq alone).
        index = ProvenanceIndex.from_events([self._two_tree_event()])
        assert len(index) == 2
        assert index.derivation_of(10) is not index.derivation_of(20)
        follow = Event(GRAFT_APPLIED, seq=10, ts=2.0, wall=3.0, data={
            "document": "d", "service": "t", "site": 0, "step": 4,
            "trees": [{"root": 30, "nodes": [30], "parent": 1, "text": "c",
                       "rule": "c :- d/a, d/b", "rule_index": 0,
                       "valuation": {}, "matched": [10, 20]}]})
        index.feed(follow)
        expanded = {entry.uid for entry in index.explain(30)
                    if entry.derivation is not None}
        assert {30, 10, 20} <= expanded
        text = index.format_explain(30)
        assert "rule 0 of service 's'" in text
        assert "rule 1 of service 's'" in text

    def test_shared_derivation_rendered_once(self):
        index = ProvenanceIndex.from_events([self._two_tree_event()])
        follow = Event(GRAFT_APPLIED, seq=10, ts=2.0, wall=3.0, data={
            "document": "d", "service": "t", "site": 0, "step": 4,
            "trees": [{"root": 30, "nodes": [30], "parent": 1, "text": "c",
                       "rule": "c :- d/a", "rule_index": 0,
                       "valuation": {}, "matched": [10, 11]}]})
        index.feed(follow)
        text = index.format_explain(30)
        assert text.count("same graft as node 10") == 1

    def test_feed_ignores_other_kinds(self):
        index = ProvenanceIndex()
        index.feed(Event("run_started", 0, 0.0, 0.0, {}))
        assert len(index) == 0

    def test_cycle_in_matched_terminates(self):
        # Defensive: a malformed log in which a node "matched" itself must
        # not hang explain().
        event = Event(GRAFT_APPLIED, seq=1, ts=0.0, wall=0.0, data={
            "document": "d", "service": "s", "site": 0, "step": 0,
            "trees": [{"root": 5, "nodes": [5], "parent": 1, "text": "x",
                       "rule": "r", "rule_index": 0, "valuation": {},
                       "matched": [5]}]})
        index = ProvenanceIndex.from_events([event])
        chain = index.explain(5)
        assert len(chain) == 2  # the node, then the visited set stops it

    def test_no_events_when_bus_disabled(self, example_3_2):
        recorder = obs.TraceRecorder()
        obs.subscribe(recorder)
        try:
            materialize(example_3_2)
        finally:
            obs.unsubscribe(recorder)
        assert recorder.events == []
