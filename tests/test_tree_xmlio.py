"""Tests for real-XML import/export."""

import pytest

from hypothesis import given, settings

from paxml.tree import (
    XmlImportError,
    from_xml_string,
    is_equivalent,
    parse_tree,
    to_xml_string,
)

from .conftest import tree_strategy


class TestExport:
    def test_plain_elements(self):
        xml = to_xml_string(parse_tree("a{b, c{d}}"), indent=False)
        assert "<a" in xml and "<b /><c><d /></c>" in xml

    def test_text_content(self):
        xml = to_xml_string(parse_tree('title{"L amour"}'), indent=False)
        assert ">L amour</title>" in xml

    def test_typed_values(self):
        xml = to_xml_string(parse_tree("n{42}"), indent=False)
        assert 'type="int"' in xml and ">42<" in xml
        xml = to_xml_string(parse_tree("n{true}"), indent=False)
        assert 'type="bool"' in xml

    def test_call_nodes(self):
        xml = to_xml_string(parse_tree('a{!GetRating{"song"}}'), indent=False)
        assert 'call service="GetRating"' in xml

    def test_function_root_rejected(self):
        with pytest.raises(ValueError):
            to_xml_string(parse_tree("a{!f}").children[0])


class TestImport:
    def test_plain(self):
        tree = from_xml_string("<a><b/><c><d/></c></a>")
        assert is_equivalent(tree, parse_tree("a{b, c{d}}"))

    def test_text(self):
        tree = from_xml_string("<t>hello</t>")
        assert is_equivalent(tree, parse_tree('t{"hello"}'))

    def test_typed(self):
        ns = 'xmlns:axml="http://paxml.example.org/axml"'
        tree = from_xml_string(f'<n {ns} axml:type="int">42</n>')
        assert is_equivalent(tree, parse_tree("n{42}"))

    def test_call(self):
        ns = 'xmlns:axml="http://paxml.example.org/axml"'
        tree = from_xml_string(
            f'<a {ns}><axml:call service="f"><p/></axml:call></a>')
        assert is_equivalent(tree, parse_tree("a{!f{p}}"))

    def test_order_is_forgotten(self):
        t1 = from_xml_string("<a><b/><c/></a>")
        t2 = from_xml_string("<a><c/><b/></a>")
        assert is_equivalent(t1, t2)

    @pytest.mark.parametrize("bad", [
        "<a>text<b/></a>",                       # mixed content
        "<a><b/>tail</a>",                       # tail text
        "not xml",
        '<axml:call xmlns:axml="http://paxml.example.org/axml"/>',  # no service
    ])
    def test_rejections(self, bad):
        with pytest.raises(XmlImportError):
            from_xml_string(bad)

    def test_bad_type_annotation(self):
        ns = 'xmlns:axml="http://paxml.example.org/axml"'
        with pytest.raises(XmlImportError):
            from_xml_string(f'<n {ns} axml:type="complex">1</n>')
        with pytest.raises(XmlImportError):
            from_xml_string(f'<n {ns} axml:type="bool">maybe</n>')


class TestRoundTrips:
    @pytest.mark.parametrize("text", [
        "a",
        "a{b, c{d}}",
        'cd{title{"Body and Soul"}, rating{4}}',
        'a{!GetRating{"song", opts{deep{true}}}}',
        'mixed{b, "loose text", c{1, 2.5}}',
        "deep{a{b{c{d{e{f}}}}}}",
    ])
    def test_specific(self, text):
        tree = parse_tree(text)
        back = from_xml_string(to_xml_string(tree))
        assert is_equivalent(tree, back), to_xml_string(tree)

    @given(tree_strategy(allow_functions=True))
    @settings(max_examples=80)
    def test_random(self, tree):
        back = from_xml_string(to_xml_string(tree))
        assert is_equivalent(tree, back)
