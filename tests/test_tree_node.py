"""Unit tests for the core tree model (Definition 2.1)."""

import pytest

from paxml.tree.node import (
    FunName,
    Label,
    Node,
    Value,
    fun,
    label,
    val,
    validate_document_root,
)


class TestMarkings:
    def test_label_equality(self):
        assert Label("a") == Label("a")
        assert Label("a") != Label("b")

    def test_domains_are_disjoint(self):
        # The same name in L, F and V yields three distinct markings.
        assert Label("a") != FunName("a")
        assert Label("a") != Value("a")
        assert FunName("a") != Value("a")

    def test_hashes_distinguish_domains(self):
        markings = {Label("a"), FunName("a"), Value("a")}
        assert len(markings) == 3

    def test_value_types_distinguished(self):
        # 1 and True are equal in Python but distinct atomic values.
        assert Value(1) != Value(True)
        assert Value(1) != Value(1.0)
        assert Value(1) == Value(1)

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Label("")

    def test_empty_function_name_rejected(self):
        with pytest.raises(ValueError):
            FunName("")

    def test_non_atomic_value_rejected(self):
        with pytest.raises(ValueError):
            Value([1, 2])

    def test_str_forms(self):
        assert str(Label("cd")) == "cd"
        assert str(FunName("GetRating")) == "!GetRating"
        assert str(Value("x")) == '"x"'


class TestNodeConstruction:
    def test_builders(self):
        tree = label("a", val(1), fun("f", label("p")))
        assert tree.is_label
        assert tree.children[0].is_value
        assert tree.children[1].is_function

    def test_string_coerces_to_label(self):
        assert Node("a").marking == Label("a")

    def test_number_coerces_to_value(self):
        assert Node(5).marking == Value(5)

    def test_values_must_be_leaves(self):
        with pytest.raises(ValueError):
            Node(Value(1), [label("a")])

    def test_add_child_to_value_rejected(self):
        leaf = val(1)
        with pytest.raises(ValueError):
            leaf.add_child(label("a"))

    def test_non_node_child_rejected(self):
        with pytest.raises(TypeError):
            Node("a", ["not a node"])

    def test_function_root_invalid_for_documents(self):
        with pytest.raises(ValueError):
            validate_document_root(fun("f"))
        validate_document_root(label("a"))
        validate_document_root(val(1))


class TestTraversal:
    def setup_method(self):
        self.tree = label("a", label("b", val(1), fun("f")), label("c"))

    def test_size(self):
        assert self.tree.size() == 5

    def test_depth(self):
        assert self.tree.depth() == 2
        assert val(1).depth() == 0

    def test_iter_nodes_preorder(self):
        markings = [str(n.marking) for n in self.tree.iter_nodes()]
        assert markings == ["a", "b", '"1"', "!f", "c"]

    def test_function_nodes(self):
        assert [str(n.marking) for n in self.tree.function_nodes()] == ["!f"]

    def test_iter_with_parents(self):
        pairs = {(str(n.marking), None if p is None else str(p.marking))
                 for n, p in self.tree.iter_with_parents()}
        assert ("a", None) in pairs
        assert ("!f", "b") in pairs

    def test_copy_is_deep(self):
        copy = self.tree.copy()
        assert copy is not self.tree
        assert copy.size() == self.tree.size()
        copy.children[0].add_child(label("new"))
        assert copy.size() == self.tree.size() + 1

    def test_remove_child_by_identity(self):
        parent = label("a", label("b"), label("b"))
        first = parent.children[0]
        parent.remove_child(first)
        assert len(parent.children) == 1
        with pytest.raises(ValueError):
            parent.remove_child(first)

    def test_deep_tree_traversal_is_iterative(self):
        # Must not hit Python's recursion limit.
        deep = label("l0")
        node = deep
        for i in range(1, 5000):
            child = label(f"l{i % 3}")
            node.add_child(child)
            node = child
        assert deep.size() == 5000
        assert deep.depth() == 4999
