"""Tests for the TM substrate and the Lemma 3.1 simulation."""

import pytest

from paxml.turing import (
    BLANK,
    Configuration,
    Machine,
    Move,
    Transition,
    anbn_recognizer,
    binary_increment,
    compile_machine,
    configuration_to_tree,
    line_to_word,
    parity_checker,
    run,
    simulate,
    tree_to_configuration,
    unary_successor,
    word_to_line,
)
from paxml.tree import to_canonical


class TestMachine:
    def test_unary_successor(self):
        result = run(unary_successor(), "111")
        assert result.accepted
        assert result.final.tape() == "1111"

    @pytest.mark.parametrize("word,accept", [
        ("", True), ("1", False), ("11", True), ("11111", False),
    ])
    def test_parity(self, word, accept):
        assert run(parity_checker(), word).accepted is accept

    @pytest.mark.parametrize("word,accept", [
        ("ab", True), ("aabb", True), ("aaabbb", True),
        ("a", False), ("b", False), ("abb", False), ("aab", False),
        ("ba", False), ("abab", False),
    ])
    def test_anbn(self, word, accept):
        assert run(anbn_recognizer(), word).accepted is accept

    @pytest.mark.parametrize("word,expected", [
        ("0", "1"), ("1", "01"), ("11", "001"), ("011", "111"),
    ])
    def test_binary_increment_lsb_first(self, word, expected):
        result = run(binary_increment(), word)
        assert result.accepted
        assert result.final.tape() == expected

    def test_budget_reported(self):
        looper = Machine(
            states={"s", "acc"}, alphabet={"1"},
            transitions=[Transition("s", "1", "s", "1", Move.RIGHT),
                         Transition("s", BLANK, "s", "1", Move.RIGHT)],
            initial="s", accept="acc",
        )
        result = run(looper, "1", max_steps=30)
        assert not result.halted and not result.accepted

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine(states={"a"}, alphabet=set(), transitions=[],
                    initial="a", accept="zz")

    def test_unknown_input_symbol_rejected(self):
        with pytest.raises(ValueError):
            run(parity_checker(), "abc")

    def test_nondeterministic_accepts_some_branch(self):
        guess = Machine(
            states={"s", "acc", "rej"}, alphabet={"1"},
            transitions=[
                Transition("s", "1", "acc", "1", Move.RIGHT),
                Transition("s", "1", "rej", "1", Move.RIGHT),
            ],
            initial="s", accept="acc", reject="rej",
        )
        assert run(guess, "1").accepted

    def test_normalized_strips_padding(self):
        config = Configuration("q", ("a", BLANK), ("b", BLANK, BLANK))
        normal = config.normalized()
        assert normal.left == ("a",)
        assert normal.right == ("b",)


class TestEncoding:
    def test_line_round_trip(self):
        for word in [[], ["a"], ["a", "b", "a"], [BLANK, "x"]]:
            assert line_to_word(word_to_line(word)) == word

    def test_line_shape(self):
        assert to_canonical(word_to_line(["a", "b"])) == "s_a{s_b{eot}}"

    def test_configuration_round_trip(self):
        config = Configuration("scan", ("1", BLANK), ("0", "1"))
        assert tree_to_configuration(configuration_to_tree(config)) == config

    def test_configuration_tree_shape(self):
        tree = configuration_to_tree(Configuration("q0", (), ("a",)))
        text = to_canonical(tree)
        assert text.startswith("cfg{")
        assert "stt{q_q0}" in text
        assert "right{s_a{eot}}" in text

    def test_malformed_trees_rejected(self):
        from paxml.tree import parse_tree

        with pytest.raises(ValueError):
            tree_to_configuration(parse_tree("nope"))
        with pytest.raises(ValueError):
            line_to_word(parse_tree("s_a{s_b}"))  # missing eot


class TestSimulation:
    """Lemma 3.1: the AXML system explores exactly the TM's configurations."""

    @pytest.mark.parametrize("machine_factory,word", [
        (unary_successor, "1"),
        (unary_successor, "1111"),
        (parity_checker, "11"),
        (parity_checker, "111"),
        (anbn_recognizer, "ab"),
        (anbn_recognizer, "aabb"),
        (anbn_recognizer, "aab"),
        (binary_increment, "111"),
    ])
    def test_configuration_sets_match(self, machine_factory, word):
        machine = machine_factory()
        native = run(machine, word)
        sim = simulate(machine, word, max_steps=20_000)
        assert sim.terminated
        assert sim.accepted == native.accepted
        assert sim.configurations == {c.normalized() for c in native.visited}

    def test_result_tape_extracted(self):
        sim = simulate(unary_successor(), "11")
        assert sim.result_tapes == {"111"}

    def test_rejecting_run_yields_no_result(self):
        sim = simulate(parity_checker(), "1")
        assert not sim.accepted
        assert sim.result_tapes == set()

    def test_step_service_is_non_simple(self):
        system = compile_machine(parity_checker(), "1")
        assert system.is_positive
        assert not system.is_simple  # tree variables shuttle the tape

    def test_nondeterministic_branches_accumulate(self):
        guess = Machine(
            states={"s", "l", "r", "acc"}, alphabet={"1"},
            transitions=[
                Transition("s", "1", "l", "1", Move.RIGHT),
                Transition("s", "1", "r", "1", Move.RIGHT),
                Transition("l", BLANK, "acc", "1", Move.RIGHT),
            ],
            initial="s", accept="acc",
        )
        sim = simulate(guess, "1")
        states = {config.state for config in sim.configurations}
        assert {"s", "l", "r", "acc"} <= states
        assert sim.accepted

    def test_monotone_accumulation_of_configs(self):
        # The run document only ever grows: every native configuration
        # appears, and nothing is removed when the machine halts.
        machine = anbn_recognizer()
        sim = simulate(machine, "ab")
        native = run(machine, "ab")
        assert len(sim.configurations) == len({c.normalized()
                                               for c in native.visited})
