"""Unit tests for the PR 8 observability primitives.

Covers :mod:`paxml.obs.trace` (contexts, admission sampling, spans),
:mod:`paxml.obs.flight` (bounded rings, dumps), :mod:`paxml.obs.slo`
(sliding-window error budgets), the bus's kind-filtered subscriptions
including the off-path allocation-free regression, and the exporters /
metrics registry under concurrent emission.
"""

from __future__ import annotations

import io
import json
import threading
import tracemalloc

import pytest

from paxml import perf
from paxml.obs import bus as obs_bus
from paxml.obs import events as obs_events
from paxml.obs import trace as obs_trace
from paxml.obs.events import Event
from paxml.obs.exporters import (prometheus_text, read_jsonl,
                                 to_chrome_trace, write_jsonl)
from paxml.obs.flight import GLOBAL, FlightRecorder
from paxml.obs.metrics import Registry
from paxml.obs.slo import DEFAULT_SLOS, SLOBoard, SLOSpec


@pytest.fixture(autouse=True)
def _trace_isolation():
    obs_trace.seed_sampler(99)
    yield
    obs_trace.reset()
    obs_trace.seed_sampler(None)
    perf.flags.tracing = True


# ----------------------------------------------------------------------
# trace contexts and admission
# ----------------------------------------------------------------------


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = obs_trace.TraceContext(trace_id="t1", span_id="s1",
                                     parent_span_id="s0", tenant="alpha")
        back = obs_trace.TraceContext.from_wire(ctx.to_wire())
        assert back == ctx

    def test_unsampled_envelope_drops_to_none(self):
        assert obs_trace.TraceContext.from_wire(None) is None
        assert obs_trace.TraceContext.from_wire({}) is None
        assert obs_trace.TraceContext.from_wire(
            {"trace_id": "t", "span_id": "s", "sampled": False}) is None
        assert obs_trace.TraceContext.from_wire({"trace_id": "t"}) is None

    def test_child_keeps_trace_and_tenant(self):
        ctx = obs_trace.TraceContext(trace_id="t1", span_id="s1",
                                     tenant="alpha")
        child = ctx.child()
        assert child.trace_id == "t1"
        assert child.parent_span_id == "s1"
        assert child.tenant == "alpha"
        assert child.span_id != ctx.span_id

    def test_activate_restore_and_use(self):
        assert obs_trace.current() is None
        ctx = obs_trace.TraceContext(trace_id="t", span_id="s")
        token = obs_trace.activate(ctx)
        assert obs_trace.current() is ctx
        obs_trace.restore(token)
        assert obs_trace.current() is None
        with obs_trace.use(ctx):
            assert obs_trace.current() is ctx
        assert obs_trace.current() is None


class TestAdmit:
    def test_rate_one_always_samples(self):
        ctx = obs_trace.admit("alpha", rate=1.0)
        assert ctx is not None and ctx.tenant == "alpha" and ctx.sampled

    def test_rate_zero_never_samples(self):
        before = perf.stats.trace_requests_unsampled
        assert obs_trace.admit("alpha", rate=0.0) is None
        assert perf.stats.trace_requests_unsampled == before + 1

    def test_flag_off_is_free(self):
        perf.flags.tracing = False
        assert obs_trace.admit("alpha", rate=1.0) is None

    def test_sampling_rate_is_respected(self):
        obs_trace.seed_sampler(7)
        hits = sum(obs_trace.admit(rate=0.1) is not None
                   for _ in range(2000))
        assert 120 <= hits <= 280   # ~200 expected

    def test_propagated_parent_is_adopted(self):
        parent = {"trace_id": "cafe", "span_id": "beef", "sampled": True}
        ctx = obs_trace.admit("alpha", rate=0.0, parent=parent)
        assert ctx is not None
        assert ctx.trace_id == "cafe"
        assert ctx.parent_span_id == "beef"   # fresh server-side span
        assert ctx.tenant == "alpha"


class TestSpans:
    def test_emit_span_reaches_sinks_and_bus(self):
        seen = []
        obs_trace.subscribe_spans(seen.append)
        events = []
        obs_bus.subscribe(events.append, kinds={obs_events.SPAN})
        obs_bus.enable()
        ctx = obs_trace.TraceContext(trace_id="t", span_id="s",
                                     tenant="alpha")
        obs_trace.emit_span(ctx, "op:inject", 1.0, 2.5, op="inject")
        assert len(seen) == 1 and seen[0].seconds == 1.5
        assert len(events) == 1 and events[0].data["trace_id"] == "t"

    def test_span_contextmanager_noop_without_context(self):
        seen = []
        obs_trace.subscribe_spans(seen.append)
        with obs_trace.span("op:read") as child:
            assert child is None
        assert seen == []

    def test_span_contextmanager_nests_and_flags_errors(self):
        seen = []
        obs_trace.subscribe_spans(seen.append)
        ctx = obs_trace.TraceContext(trace_id="t", span_id="s")
        with pytest.raises(RuntimeError):
            with obs_trace.use(ctx):
                with obs_trace.span("op:boom"):
                    raise RuntimeError("boom")
        assert len(seen) == 1
        assert seen[0].status == "error"
        assert seen[0].parent_span_id == "s"

    def test_failing_sink_does_not_break_emission(self):
        def bad(_span):
            raise ValueError("sink down")
        good = []
        obs_trace.subscribe_spans(bad)
        obs_trace.subscribe_spans(good.append)
        ctx = obs_trace.TraceContext(trace_id="t", span_id="s")
        obs_trace.emit_span(ctx, "x", 0.0, 1.0)
        assert len(good) == 1


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_rings_are_bounded_per_tenant(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record("alpha", "serve_op", op="run", i=i)
        snap = flight.snapshot("alpha")
        assert len(snap) == 4
        assert [row["data"]["i"] for row in snap] == [6, 7, 8, 9]
        assert flight.recorded == 10

    def test_tenant_stamped_into_payload(self):
        flight = FlightRecorder()
        flight.record("alpha", "serve_op", op="run")
        flight.record(None, "watchdog_stall", reason="frontier")
        assert flight.snapshot("alpha")[0]["data"]["tenant"] == "alpha"
        assert flight.tenants() == [GLOBAL, "alpha"]

    def test_merged_snapshot_orders_by_ts(self):
        flight = FlightRecorder()
        flight.record("beta", "serve_op", op="b")
        flight.record("alpha", "serve_op", op="a")
        ops = [row["data"]["op"] for row in flight.snapshot()]
        assert ops == ["b", "a"]

    def test_dump_round_trips_through_exporters(self, tmp_path):
        flight = FlightRecorder()
        flight.record("alpha", "serve_op", op="inject",
                      trace_id="t1", seconds=0.01)
        ctx = obs_trace.TraceContext(trace_id="t1", span_id="s1",
                                     tenant="alpha")
        flight.record_span(obs_trace.emit_span(ctx, "op:inject", 1.0, 2.0))
        path = tmp_path / "flight.jsonl"
        written = flight.dump(str(path))
        assert written == 2
        events = read_jsonl(str(path))
        assert {e.kind for e in events} == {"serve_op", "span"}
        chrome = to_chrome_trace(events)
        assert any(e.get("ph") == "X" for e in chrome["traceEvents"])

    def test_bus_attach_is_kind_filtered(self):
        flight = FlightRecorder()
        flight.attach()
        obs_bus.enable()
        try:
            obs_bus.emit(obs_events.GRAFT_APPLIED, tenant="alpha", step=1)
            obs_bus.emit(obs_events.ATTEMPT_STARTED, tenant="alpha")
        finally:
            flight.detach()
        kinds = [row["kind"] for row in flight.snapshot("alpha")]
        assert obs_events.GRAFT_APPLIED in kinds
        assert obs_events.ATTEMPT_STARTED not in kinds

    def test_clear(self):
        flight = FlightRecorder()
        flight.record("alpha", "x")
        flight.record("beta", "x")
        flight.clear("alpha")
        assert flight.tenants() == ["beta"]
        flight.clear()
        assert flight.tenants() == []


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------


class TestSLO:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", op="*", objective="vibes")
        with pytest.raises(ValueError):
            SLOSpec(name="x", op="*", budget=0.0)
        spec = SLOSpec(name="x", op="inject")
        assert SLOSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_latency_objective_burn_and_breach(self):
        registry = Registry()
        board = SLOBoard([SLOSpec(name="inj", op="inject",
                                  threshold=0.1, budget=0.1, window=10)],
                         registry=registry)
        for _ in range(8):
            board.observe("alpha", "inject", 0.01, True)
        board.observe("alpha", "inject", 0.5, True)    # slow → bad
        board.observe("alpha", "inject", 0.01, False)  # error → bad
        (row,) = board.report("alpha")
        assert row["bad_fraction"] == pytest.approx(0.2)
        assert row["burn_rate"] == pytest.approx(2.0)
        assert row["breached"]
        text = prometheus_text(registry)
        assert 'paxml_slo_burn_rate{slo="inj",tenant="alpha"} 2.0' in text

    def test_window_slides(self):
        board = SLOBoard([SLOSpec(name="inj", op="inject",
                                  threshold=0.1, budget=0.5, window=4)],
                         registry=Registry())
        board.observe("alpha", "inject", 9.0, True)
        for _ in range(4):
            board.observe("alpha", "inject", 0.01, True)
        (row,) = board.report()
        assert row["bad_fraction"] == 0.0     # the bad verdict slid out
        assert row["bad_total"] == 1          # lifetime count remains

    def test_op_filter_and_wildcard(self):
        board = SLOBoard([SLOSpec(name="errors", op="*",
                                  objective="errors", budget=0.5, window=10)],
                         registry=Registry())
        board.observe("alpha", "read", 0.0, False)
        board.observe("alpha", "inject", 0.0, True)
        (row,) = board.report()
        assert row["observed"] == 2 and row["bad_total"] == 1

    def test_default_slos_cover_inject_and_delta_push(self):
        assert {s.op for s in DEFAULT_SLOS} >= {"inject", "delta_push", "*"}


# ----------------------------------------------------------------------
# bus kind filtering + the off-path regression
# ----------------------------------------------------------------------


class TestBusKinds:
    def test_kind_filter_only_sees_its_kinds(self):
        filtered, everything = [], []
        obs_bus.subscribe(filtered.append, kinds={"span"})
        obs_bus.subscribe(everything.append)
        obs_bus.enable()
        obs_bus.emit("span", x=1)
        obs_bus.emit("graft_applied", x=2)
        assert [e.kind for e in filtered] == ["span"]
        assert [e.kind for e in everything] == ["span", "graft_applied"]

    def test_resubscribe_replaces_registration(self):
        seen = []
        obs_bus.subscribe(seen.append, kinds={"span", "serve_op"})
        obs_bus.subscribe(seen.append, kinds={"span"})   # tighten
        obs_bus.enable()
        obs_bus.emit("span")
        obs_bus.emit("serve_op")
        assert [e.kind for e in seen] == ["span"]
        assert obs_bus.subscriber_count() == 1
        obs_bus.unsubscribe(seen.append)
        assert obs_bus.subscriber_count() == 0

    def test_off_path_allocation_free_with_kind_subscribers(self):
        """Regression: a disabled bus with kind-filtered subscribers
        attached must not allocate on the instrumented hot path."""
        obs_bus.subscribe(lambda e: None, kinds={"span", "serve_op"})
        assert not obs_bus.ACTIVE

        def hot(n):
            # The instrumented call-site idiom: payload built only
            # inside the guard.
            for _ in range(n):
                if obs_bus.ACTIVE:
                    obs_bus.emit("graft_applied",
                                 trees=[{"big": "payload"}] * 50)

        hot(10)   # warm any lazy interpreter state
        emitted_before = obs_bus.emitted
        tracemalloc.start()
        try:
            hot(10_000)
            current, _peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert obs_bus.emitted == emitted_before
        assert current < 2048   # tracemalloc bookkeeping slack only


# ----------------------------------------------------------------------
# exporters and registry under concurrent emission
# ----------------------------------------------------------------------


class TestConcurrentEmit:
    N_THREADS = 8
    N_EVENTS = 200

    def test_bus_and_jsonl_under_concurrent_emit(self):
        seen = []
        obs_bus.subscribe(seen.append, kinds={"serve_op"})
        obs_bus.enable()

        def worker(tid):
            for i in range(self.N_EVENTS):
                obs_bus.emit("serve_op", tenant=f"t{tid}", op="inject", i=i)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(seen) == self.N_THREADS * self.N_EVENTS
        assert len({e.seq for e in seen}) == len(seen)   # unique seqs
        # Every event survives a JSONL round trip.
        buffer = io.StringIO()
        write_jsonl(seen, buffer)
        buffer.seek(0)
        back = read_jsonl(buffer)
        assert len(back) == len(seen)
        # The Chrome exporter buckets each tenant into its own pid.
        chrome = to_chrome_trace(back)
        tenant_pids = {e["pid"] for e in chrome["traceEvents"]
                       if e.get("ph") == "M" and e.get("name")
                       == "process_name"
                       and e["args"]["name"].startswith("tenant ")}
        assert len(tenant_pids) == self.N_THREADS

    def test_registry_under_concurrent_observation(self):
        registry = Registry()
        counter = registry.counter("ops_total", labelnames=("tenant",))
        histogram = registry.histogram("op_seconds",
                                       labelnames=("tenant",))

        def worker(tid):
            label = f"t{tid}"
            for i in range(self.N_EVENTS):
                counter.labels(tenant=label).inc()
                histogram.labels(tenant=label).observe(i / 1000.0)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for tid in range(self.N_THREADS):
            assert counter.labels(
                tenant=f"t{tid}").value == self.N_EVENTS
        text = prometheus_text(registry)
        for tid in range(self.N_THREADS):
            assert f'ops_total{{tenant="t{tid}"}} {float(self.N_EVENTS)}' \
                in text

    def test_span_sinks_under_concurrent_emit(self):
        flight = FlightRecorder(capacity=self.N_THREADS * self.N_EVENTS)
        obs_trace.subscribe_spans(flight.record_span)

        def worker(tid):
            ctx = obs_trace.TraceContext(trace_id=f"trace{tid}",
                                         span_id="s", tenant=f"t{tid}")
            for i in range(self.N_EVENTS):
                obs_trace.emit_span(ctx, f"op:{i}", 0.0, 1.0)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = sum(len(flight.snapshot(f"t{t}"))
                    for t in range(self.N_THREADS))
        assert total == self.N_THREADS * self.N_EVENTS
