"""The unified metrics registry and its perf/runtime absorption."""

import pytest

from paxml import materialize, obs, perf
from paxml.obs import bus
from paxml.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    absorb_rewrite,
    absorb_runtime,
    nearest_rank,
)
from paxml.runtime.metrics import LatencyHistogram, RuntimeMetrics


class TestNearestRank:
    def test_singleton(self):
        assert nearest_rank([7.0], 0.5) == 7.0
        assert nearest_rank([7.0], 0.99) == 7.0

    def test_integral_rank_boundary(self):
        # q·n integral: ceil(0.5·4)=2 → the 2nd order statistic.  The old
        # int(q·n) indexing read ordered[2] == 3 here.
        assert nearest_rank([1, 2, 3, 4], 0.5) == 2

    def test_max_quantile_is_max(self):
        data = list(range(1, 101))
        assert nearest_rank(data, 1.0) == 100
        assert nearest_rank(data, 0.99) == 99
        assert nearest_rank(data, 0.5) == 50

    def test_tiny_quantile_clamps_to_first(self):
        assert nearest_rank([1, 2, 3], 0.0001) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_histogram_exact_below_cap(self):
        h = Histogram(cap=10)
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["dropped"] == 0
        assert s["min"] == 1.0 and s["max"] == 3.0 and s["p50"] == 2.0

    def test_histogram_cap_keeps_exact_count_and_sum(self):
        h = Histogram(cap=5)
        for v in range(8):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 8
        assert s["dropped"] == 3
        assert s["sum"] == sum(range(8))
        assert len(h.samples) == 5

    def test_histogram_empty(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0, "dropped": 0}


class TestRegistry:
    def test_labels_validated(self):
        registry = Registry()
        family = registry.counter("x_total", labelnames=("engine",))
        family.labels(engine="a").inc()
        with pytest.raises(ValueError):
            family.labels(wrong="a")
        with pytest.raises(ValueError):
            family.labels()

    def test_same_name_same_shape_is_same_family(self):
        registry = Registry()
        a = registry.counter("x_total", labelnames=("k",))
        b = registry.counter("x_total", labelnames=("k",))
        assert a is b

    def test_conflicting_reregistration_rejected(self):
        registry = Registry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("k",))

    def test_collect_shape(self):
        registry = Registry()
        registry.counter("c_total", "help!", ("k",)).labels(k="v").inc(3)
        registry.histogram("h_seconds").labels().observe(1.0)
        out = registry.collect()
        assert out["c_total"]["samples"] == [
            {"labels": {"k": "v"}, "value": 3.0}]
        assert out["h_seconds"]["samples"][0]["count"] == 1

    def test_reset_keeps_collectors(self):
        registry = Registry()
        registry.register_collector("pfx", lambda: {"k": 7})
        registry.counter("gone_total").labels().inc()
        registry.reset()
        out = registry.collect()
        assert "gone_total" not in out
        assert out["pfx_k"]["samples"][0]["value"] == 7


class TestPerfMirror:
    """perf.stats and the registry must agree on how much tracing happened."""

    def test_registry_sees_perf_counters(self):
        perf.stats.reset()
        perf.stats.obs_events = 41
        collected = REGISTRY.collect()
        assert collected["paxml_perf_obs_events"]["samples"][0]["value"] == 41

    def test_bus_emission_mirrors_into_perf(self, example_3_2):
        perf.stats.reset()
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            materialize(example_3_2)
        assert len(recorder.events) > 0
        assert perf.stats.obs_events == bus.emitted == len(recorder.events)
        assert perf.stats.obs_dropped == bus.dropped == 0
        collected = REGISTRY.collect()
        assert (collected["paxml_perf_obs_events"]["samples"][0]["value"]
                == len(recorder.events))

    def test_broken_subscriber_counted_not_raised(self, example_3_2):
        perf.stats.reset()

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        with obs.tracing():
            materialize(example_3_2)
        assert bus.dropped > 0
        assert perf.stats.obs_dropped == bus.dropped


class TestAbsorption:
    def test_absorb_runtime(self):
        registry = Registry()
        metrics = RuntimeMetrics()
        metrics.record_attempt("f")
        metrics.record_attempt("f")
        metrics.record_failure("f", timeout=True)
        metrics.record_retry("f")
        metrics.record_success("f", 0.25)
        metrics.enter_flight()
        metrics.enter_flight()
        absorb_runtime(metrics, registry=registry,
                       invocations_by_service={"f": 2})
        out = registry.collect()
        events = {tuple(sorted(r["labels"].items())): r["value"]
                  for r in out["paxml_runtime_events_total"]["samples"]}
        assert events[(("engine", "async"), ("event", "attempts"))] == 2
        assert events[(("engine", "async"), ("event", "retries"))] == 1
        peak = out["paxml_runtime_in_flight_peak"]["samples"][0]
        assert peak["value"] == 2
        latency = out["paxml_runtime_latency_seconds"]["samples"][0]
        assert latency["count"] == 1 and latency["p50"] == 0.25
        inv = out["paxml_invocations_total"]["samples"][0]
        assert inv["labels"] == {"engine": "async", "service": "f"}
        assert inv["value"] == 2

    def test_absorb_rewrite(self, example_3_2):
        registry = Registry()
        result = materialize(example_3_2)
        absorb_rewrite(result, registry=registry)
        out = registry.collect()
        events = {r["labels"]["event"]: r["value"]
                  for r in out["paxml_rewrite_events_total"]["samples"]}
        assert events["steps"] == result.steps
        assert events["productive_steps"] == result.productive_steps
        inv = {r["labels"]["service"]: r["value"]
               for r in out["paxml_invocations_total"]["samples"]}
        assert inv == dict(result.invocations_by_service)

    def test_sequential_run_absorbed_into_global_registry(self, example_3_2):
        before = REGISTRY.collect().get("paxml_rewrite_events_total")
        steps_before = 0.0
        if before:
            steps_before = sum(r["value"] for r in before["samples"]
                               if r["labels"]["event"] == "steps")
        result = materialize(example_3_2)
        after = REGISTRY.collect()["paxml_rewrite_events_total"]
        steps_after = sum(r["value"] for r in after["samples"]
                          if r["labels"]["event"] == "steps")
        assert steps_after == steps_before + result.steps


class TestLatencyHistogram:
    def test_empty_reports_dropped(self):
        h = LatencyHistogram()
        assert h.summary() == {"count": 0, "dropped": 0}

    def test_dropped_surfaces_past_cap(self, monkeypatch):
        monkeypatch.setattr("paxml.runtime.metrics._HISTOGRAM_CAP", 4)
        h = LatencyHistogram()
        for v in range(6):
            h.observe(float(v))
        s = h.summary()
        # count/mean stay exact past the cap; the overflow is visible in
        # dropped rather than silently shrinking the count.
        assert s["count"] == 6 and s["dropped"] == 2
        assert s["mean"] == sum(range(6)) / 6
        assert len(h.samples) == 4

    def test_p99_exposed(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["p99"] == 99.0

    def test_quantiles_at_cap_boundary(self, monkeypatch):
        # Exactly at the cap the old int(q·n) indexing hit ordered[n·q],
        # one past the nearest-rank sample (and IndexError at q=1.0-ish
        # caps); nearest-rank must stay in range and exact.
        monkeypatch.setattr("paxml.runtime.metrics._HISTOGRAM_CAP", 100)
        h = LatencyHistogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100 and s["dropped"] == 0
        assert s["p50"] == 50.0
        assert s["p95"] == 95.0
        assert s["max"] == 100.0

    def test_single_sample(self):
        h = LatencyHistogram()
        h.observe(0.5)
        s = h.summary()
        assert s["p50"] == s["p95"] == s["min"] == s["max"] == 0.5
