"""Tests for systems, services and single invocations (Section 2.2)."""

import pytest

from paxml.system import (
    AXMLSystem,
    BlackBoxService,
    MonotonicityError,
    QueryService,
    StaleCallError,
    SystemValidationError,
    UnionQueryService,
    build_input_tree,
    constant_service,
    invoke,
)
from paxml.tree import CONTEXT, INPUT, Forest, label, parse_tree, to_canonical, val


class TestSystemValidation:
    def test_reserved_document_names_rejected(self):
        for name in (INPUT, CONTEXT):
            with pytest.raises(SystemValidationError):
                AXMLSystem.build(documents={name: "a"})

    def test_undeclared_service_in_document(self):
        with pytest.raises(SystemValidationError):
            AXMLSystem.build(documents={"d": "a{!ghost}"})

    def test_undeclared_document_in_service(self):
        with pytest.raises(SystemValidationError):
            AXMLSystem.build(documents={"d": "a"},
                             services={"f": "x :- missing/a"})

    def test_undeclared_emitted_function(self):
        with pytest.raises(SystemValidationError):
            AXMLSystem.build(documents={"d": "a{!f}"},
                             services={"f": "x{!ghost} :- d/a"})

    def test_input_context_always_allowed(self):
        AXMLSystem.build(documents={"d": "a{!f}"},
                         services={"f": "x{$v} :- input/input{$v}, context/a"})

    def test_shared_nodes_rejected(self):
        from paxml.tree import Document

        shared = parse_tree("a{b}")
        with pytest.raises(SystemValidationError):
            AXMLSystem(
                [Document("d1", shared), Document("d2", shared)], []
            )

    def test_duplicate_names_rejected(self):
        from paxml.tree import Document

        with pytest.raises(SystemValidationError):
            AXMLSystem([Document("d", parse_tree("a")),
                        Document("d", parse_tree("b"))], [])

    def test_documents_reduced_on_construction(self):
        system = AXMLSystem.build(documents={"d": "a{b, b, b{c}}"})
        assert to_canonical(system.documents["d"].root) == "a{b{c}}"

    def test_classification(self):
        simple = AXMLSystem.build(documents={"d": "a{!f}"},
                                  services={"f": "x{$v} :- d/a{$v}"})
        assert simple.is_positive and simple.is_simple
        non_simple = AXMLSystem.build(documents={"d": "a{!f}"},
                                      services={"f": "x{*T} :- d/a{*T}"})
        assert non_simple.is_positive and not non_simple.is_simple
        black = AXMLSystem.build(
            documents={"d": "a{!f}"},
            services={"f": BlackBoxService("f", lambda env: Forest.empty())},
        )
        assert not black.is_positive and not black.is_simple


class TestServices:
    def test_union_service_evaluates_all_rules(self):
        service = UnionQueryService.parse("u", "x{$v} :- d/a{$v}; y :- d/a")
        result = service.evaluate({"d": parse_tree("a{1}")})
        assert {to_canonical(t) for t in result} == {"x{1}", "y"}

    def test_union_requires_rules(self):
        with pytest.raises(ValueError):
            UnionQueryService("u", [])

    def test_reads_and_emits(self):
        service = QueryService.parse(
            "f", "out{!g} :- input/input{$x}, other/a{$x}")
        assert service.reads_documents() == {"input", "other"}
        assert service.emits_functions() == {"g"}
        assert service.uses_input and not service.uses_context

    def test_black_box_wraps_iterables(self):
        service = BlackBoxService("b", lambda env: [label("x", val(1))])
        result = service.evaluate({})
        assert to_canonical(result.trees[0]) == "x{1}"

    def test_black_box_monotonicity_check(self):
        answers = [Forest([parse_tree("a{b, c}")]), Forest([parse_tree("a{b}")])]
        service = BlackBoxService("shrinking", lambda env: answers.pop(0).copy(),
                                  check_monotone=True)
        service.evaluate({})
        with pytest.raises(MonotonicityError):
            service.evaluate({})

    def test_constant_service(self):
        service = constant_service("c", Forest([parse_tree("k{1}")]))
        assert service.evaluate({}).trees[0].marking.name == "k"
        assert service.reads_documents() == set()


class TestInvocation:
    def make(self):
        return AXMLSystem.build(
            documents={"d": 'a{!f{"p1", "p2"}}', "e": "src{item{1}}"},
            services={"f": "got{$v} :- e/src{item{$v}}"},
        )

    def test_input_tree_shape(self):
        system = self.make()
        call = system.documents["d"].root.function_nodes()[0]
        input_tree = build_input_tree(call)
        assert to_canonical(input_tree) == 'input{"p1", "p2"}'
        # Parameters are copied, not shared.
        assert input_tree.children[0] is not call.children[0]

    def test_invoke_appends_as_sibling(self):
        system = self.make()
        document = system.documents["d"]
        call = document.root.function_nodes()[0]
        result = invoke(system, document, call)
        assert result.changed
        assert to_canonical(document.root) == 'a{!f{"p1", "p2"}, got{1}}'
        # The call node itself survives (pull mode re-invokes it later).
        assert document.root.function_nodes()

    def test_second_invocation_is_noop(self):
        system = self.make()
        document = system.documents["d"]
        call = document.root.function_nodes()[0]
        invoke(system, document, call)
        result = invoke(system, document, call)
        assert not result.changed

    def test_input_binding(self):
        system = AXMLSystem.build(
            documents={"d": 'a{!echo{"x", inner{"y"}}}'},
            services={"echo": "back{$v} :- input/input{$v}"},
        )
        document = system.documents["d"]
        invoke(system, document, document.root.function_nodes()[0])
        assert 'back{"x"}' in to_canonical(document.root)

    def test_context_binding(self):
        system = AXMLSystem.build(
            documents={"d": 'a{ctx{tag{"t"}, !peek}}'},
            services={"peek": "saw{$v} :- context/ctx{tag{$v}}"},
        )
        document = system.documents["d"]
        call = document.root.function_nodes()[0]
        invoke(system, document, call)
        assert 'saw{"t"}' in to_canonical(document.root)

    def test_subsumed_answers_not_inserted(self):
        system = AXMLSystem.build(
            documents={"d": "a{got{1}, !f}", "e": "src{item{1}}"},
            services={"f": "got{$v} :- e/src{item{$v}}"},
        )
        document = system.documents["d"]
        result = invoke(system, document, document.root.function_nodes()[0])
        assert not result.changed
        assert len(result.answers) == 1  # computed but redundant

    def test_growth_prunes_newly_dominated_siblings(self):
        system = AXMLSystem.build(
            documents={"d": "a{got, box{!f}}", "e": "src{item{1}}"},
            services={"f": "got{$v} :- e/src{item{$v}}"},
        )
        # After f fires inside box, box{…, got{1}} does not subsume the
        # top-level bare a-child 'got' (different parents) — but a sibling
        # of box equal to a weaker box copy would be pruned:
        document = system.documents["d"]
        invoke(system, document, document.root.function_nodes()[0])
        assert to_canonical(document.root) == "a{box{!f, got{1}}, got}"

    def test_stale_call_raises(self):
        system = self.make()
        document = system.documents["d"]
        orphan = parse_tree("x{!f}").function_nodes()[0]
        with pytest.raises(StaleCallError):
            invoke(system, document, orphan)

    def test_function_rooted_answers_rejected(self):
        bad = BlackBoxService("bad", lambda env: Forest([parse_tree("!g")]),
                              emits={"g"})
        inert = BlackBoxService("g", lambda env: Forest.empty())
        system = AXMLSystem.build(documents={"d": "a{!bad}"},
                                  services={"bad": bad, "g": inert})
        document = system.documents["d"]
        with pytest.raises(ValueError):
            invoke(system, document, document.root.function_nodes()[0])


class TestSystemViews:
    def test_signature_detects_equivalence(self, example_3_2):
        copy = example_3_2.copy()
        assert example_3_2.equivalent_to(copy)
        copy.documents["d1"].root.add_child(parse_tree("t{c0{9}, c1{9}}"))
        assert not example_3_2.equivalent_to(copy)

    def test_subsumed_by(self, example_3_2):
        grown = example_3_2.copy()
        grown.documents["d1"].root.add_child(parse_tree("extra"))
        assert example_3_2.subsumed_by(grown)
        assert not grown.subsumed_by(example_3_2)

    def test_copy_with_node_map(self, jazz_portal):
        copy, mapping = jazz_portal.copy_with_node_map()
        for document in jazz_portal.documents.values():
            for node in document.root.iter_nodes():
                image = mapping[id(node)]
                assert image.marking == node.marking
        assert copy.equivalent_to(jazz_portal)

    def test_call_sites(self, jazz_portal):
        names = sorted(n.marking.name for _d, n in jazz_portal.call_sites())
        assert names == ["FreeMusicDB", "GetRating"]
