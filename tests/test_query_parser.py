"""Tests for the rule / pattern concrete syntax (Definition 3.1)."""

import pytest

from paxml.query import (
    FunVar,
    LabelVar,
    PatternNode,
    QueryValidationError,
    RegexSpec,
    TreeVar,
    ValueVar,
    parse_pattern,
    parse_queries,
    parse_query,
    pattern_to_text,
)
from paxml.tree import FunName, Label, ParseError, Value


class TestPatternParsing:
    def test_variable_sigils(self):
        pattern = parse_pattern("a{$v, @l, #f, *T}")
        specs = [c.spec for c in pattern.children]
        assert specs == [ValueVar("v"), LabelVar("l"), FunVar("f"), TreeVar("T")]

    def test_constants(self):
        pattern = parse_pattern('a{"s", 3, true, !Call}')
        specs = [c.spec for c in pattern.children]
        assert specs == [Value("s"), Value(3), Value(True), FunName("Call")]

    def test_regex_spec(self):
        pattern = parse_pattern("a{[b.(c|d)*.e]}")
        spec = pattern.children[0].spec
        assert isinstance(spec, RegexSpec)
        assert str(spec) == "[b.(c|d)*.e]"

    def test_regex_with_children(self):
        pattern = parse_pattern("a{[b.c]{$x, d}}")
        regex_node = pattern.children[0]
        assert isinstance(regex_node.spec, RegexSpec)
        assert len(regex_node.children) == 2

    def test_tree_var_must_be_leaf(self):
        with pytest.raises(ParseError):
            parse_pattern("a{*T{b}}")

    def test_value_var_must_be_leaf(self):
        with pytest.raises(ParseError):
            parse_pattern("a{$v{b}}")

    def test_epsilon_regex_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("a{[b?]}")

    def test_round_trip(self):
        for text in ["a{$v, @l{c}}", "a{*T, !f{$x}}", "@root{[p.q]}"]:
            pattern = parse_pattern(text)
            again = parse_pattern(pattern_to_text(pattern))
            assert pattern_to_text(again) == pattern_to_text(pattern)


class TestQueryParsing:
    def test_paper_query(self):
        query = parse_query(
            'songs{$x} :- doc1/directory{cd{title{$x}, '
            'singer{"Carla Bruni"}, rating{"***"}}}'
        )
        assert query.is_simple
        assert query.document_names() == {"doc1"}
        assert not query.has_regex

    def test_empty_body(self):
        query = parse_query("a{!f} :- ")
        assert query.body == []
        assert query.head_function_names() == {"f"}

    def test_multiple_atoms_and_inequality(self):
        query = parse_query("z{$x, $y} :- d/a{$x}, e/b{$y}, $x != $y")
        assert len(query.body) == 2
        assert len(query.inequalities) == 1

    def test_inequality_with_constant(self):
        query = parse_query('z{@l} :- d/a{@l}, @l != b')
        ineq = query.inequalities[0]
        assert ineq.right == Label("b")

    def test_inequality_value_constant(self):
        query = parse_query('z{$v} :- d/a{$v}, $v != "stop"')
        assert query.inequalities[0].right == Value("stop")

    def test_tree_variable_makes_non_simple(self):
        query = parse_query("z{*T} :- d/a{*T}")
        assert not query.is_simple

    def test_semicolon_separated_rules(self):
        rules = parse_queries("a{b} :- d/x; a{c} :- d/y")
        assert len(rules) == 2

    def test_function_names_collected(self):
        query = parse_query("out{!emit} :- d/a{!probe{$x}}")
        assert query.function_names() == {"emit", "probe"}
        assert query.head_function_names() == {"emit"}


class TestQueryValidation:
    def test_unsafe_head_variable(self):
        with pytest.raises(ParseError):
            parse_query("z{$x} :- d/a{$y}")

    def test_tree_variable_twice_in_body(self):
        with pytest.raises(ParseError):
            parse_query("z{*T} :- d/a{*T}, e/b{*T}")

    def test_tree_variable_twice_same_pattern(self):
        with pytest.raises(ParseError):
            parse_query("z{*T} :- d/a{*T, b{*T}}")

    def test_tree_inequality_forbidden(self):
        # Definition 3.1(3): monotonicity requires it (Prop. 3.1(2)).
        with pytest.raises(ParseError):
            parse_query("z :- d/a{*T}, e/b{*U}, *T != *U")

    def test_inequality_variable_must_occur_in_body(self):
        with pytest.raises(ParseError):
            parse_query("z :- d/a, $x != $y")

    def test_head_cannot_be_function_rooted(self):
        with pytest.raises(ParseError):
            parse_query("!f :- d/a")

    def test_regex_forbidden_in_head(self):
        with pytest.raises((ParseError, QueryValidationError)):
            parse_query("z{[a.b]} :- d/a")

    def test_head_variable_in_inequality_only_is_unsafe(self):
        with pytest.raises(ParseError):
            parse_query("z{$x} :- d/a, $x != $x")

    def test_str_round_trip(self):
        text = "z{$x} :- d/a{$x, b}, e/c, $x != 1"
        query = parse_query(text)
        again = parse_query(str(query))
        assert str(again) == str(query)
