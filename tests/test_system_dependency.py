"""Tests for dependency graphs, acyclicity, and fire-once semantics
(Definition 3.2 and the end of Section 4)."""

import pytest

from paxml.system import (
    AXMLSystem,
    Status,
    dependency_graph,
    fire_once,
    is_acyclic,
    materialize,
)
from paxml.tree import to_canonical


def acyclic_pipeline() -> AXMLSystem:
    """d --calls--> f --reads--> e --calls--> g --reads--> base."""
    return AXMLSystem.build(
        documents={
            "d": "top{!f}",
            "e": "mid{!g}",
            "base": "src{v{1}, v{2}}",
        },
        services={
            "f": "copy{$x} :- e/mid{leaf{$x}}",
            "g": "leaf{$x} :- base/src{v{$x}}",
        },
    )


class TestDependencyGraph:
    def test_edges_of_definition_3_2(self, example_3_2):
        graph = dependency_graph(example_3_2)
        assert "f" in graph.successors("d1")   # (d, f): call occurs in doc
        assert "g" in graph.successors("d1")
        assert "d0" in graph.successors("g")   # (f, d): service reads doc
        assert "d1" in graph.successors("f")

    def test_emitted_functions_create_edges(self):
        system = AXMLSystem.build(
            documents={"d": "a{!f}"},
            services={"f": "x{!g} :- ", "g": "y :- "},
        )
        graph = dependency_graph(system)
        assert "g" in graph.successors("f")

    def test_cycle_detection(self, example_3_2):
        # f reads d1 which contains f: a cycle.
        graph = dependency_graph(example_3_2)
        assert not graph.is_acyclic
        assert "f" in graph.cyclic_vertices()
        assert "g" not in graph.cyclic_vertices()

    def test_self_loop_detected(self, example_2_1):
        graph = dependency_graph(example_2_1)
        assert "f" in graph.cyclic_vertices()  # f emits f

    def test_acyclic_system(self):
        assert is_acyclic(acyclic_pipeline())

    def test_topological_order(self):
        graph = dependency_graph(acyclic_pipeline())
        order = graph.topological_order()
        assert order.index("base") < order.index("g")
        assert order.index("g") < order.index("e")
        assert order.index("e") < order.index("f")

    def test_topological_order_rejects_cycles(self, example_3_2):
        with pytest.raises(ValueError):
            dependency_graph(example_3_2).topological_order()

    def test_recursive_functions_include_dependents(self):
        system = AXMLSystem.build(
            documents={"d": "a{!outer}", "e": "b{!loop}"},
            services={
                "loop": "x{!loop} :- ",
                "outer": "y{$v} :- e/b{x{$v}}",  # reads a doc fed by the loop
            },
        )
        graph = dependency_graph(system)
        recursive = graph.recursive_functions()
        assert "loop" in recursive
        assert "outer" in recursive  # tainted transitively

    def test_acyclic_systems_terminate(self):
        system = acyclic_pipeline()
        result = materialize(system)
        assert result.status is Status.TERMINATED
        assert "copy{1}" in to_canonical(system.documents["d"].root)

    def test_tarjan_on_larger_graph(self):
        # A chain of 30 services with one back-edge forms one big SCC.
        services = {f"s{i}": f"x{{!s{i+1}}} :- " for i in range(29)}
        services["s29"] = "x{!s0} :- "
        system = AXMLSystem.build(documents={"d": "a{!s0}"}, services=services)
        graph = dependency_graph(system)
        components = [set(c) for c in graph.strongly_connected_components()]
        assert {f"s{i}" for i in range(30)} in components


class TestFireOnce:
    def test_acyclic_coincides_with_positive_semantics(self):
        reference = acyclic_pipeline()
        materialize(reference)
        subject = acyclic_pipeline()
        outcome = fire_once(subject)
        assert outcome.complete
        assert subject.equivalent_to(reference)

    def test_recursive_rule_never_fires(self, example_3_2):
        outcome = fire_once(example_3_2)
        assert outcome.skipped_recursive == {"f"}
        d1 = to_canonical(example_3_2.documents["d1"].root)
        # Base facts copied by g, but no transitive fact: the paper's
        # "the recursive rule will not be evaluated".
        assert "t{c0{1}, c1{2}}" in d1
        assert "t{c0{1}, c1{3}}" not in d1

    def test_fire_once_computes_less_than_positive(self, example_3_2):
        reference = example_3_2.copy()
        materialize(reference)
        fire_once(example_3_2)
        assert example_3_2.subsumed_by(reference)
        assert not example_3_2.equivalent_to(reference)

    def test_each_call_fires_at_most_once(self):
        system = acyclic_pipeline()
        outcome = fire_once(system)
        # f, g, and the g-call that f's answer pulls in… f's answers carry
        # no calls here, so exactly the two original calls fire.
        assert outcome.fired == 2
        assert sorted(outcome.order) == ["f", "g"]

    def test_dependency_order_respected(self):
        system = acyclic_pipeline()
        outcome = fire_once(system)
        assert outcome.order.index("g") < outcome.order.index("f")

    def test_calls_introduced_by_answers_fire_later(self):
        system = AXMLSystem.build(
            documents={"d": "a{!outer}", "e": "src{v{5}}"},
            services={
                "outer": "mid{!inner} :- ",
                "inner": "leaf{$v} :- e/src{v{$v}}",
            },
        )
        outcome = fire_once(system)
        assert outcome.order == ["outer", "inner"]
        assert "leaf{5}" in to_canonical(system.documents["d"].root)

    def test_divergent_self_loop_is_skipped_entirely(self, example_2_1):
        outcome = fire_once(example_2_1)
        assert outcome.fired == 0
        assert outcome.skipped_recursive == {"f"}
        assert to_canonical(example_2_1.documents["d"].root) == "a{!f}"
