"""The sharded serve layer: tenant placement on session-host workers.

With ``ServerOptions(workers=N)`` the front process hosts no sessions:
every tenant lives in one of N worker processes, ops are forwarded over
the shard framing protocol, and suspend/resume moves tenants between
workers with PR 5 checkpoint bundles as the carrier.  These tests boot
real worker processes — they are the serve-side counterpart of the
sharded-run oracle in ``test_runtime_equivalence.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml.cli import _render_top
from paxml.serve import PaxmlServer, ServeClient, ServeError, ServerOptions

TC_SYSTEM = """
@document d0
r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}

@document d1
r{!g, !f}

@service g
t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}

@service f
t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}
"""

CLOSURE = "r{!f, !g, t{c0{1}, c1{2}}, t{c0{1}, c1{3}}, t{c0{2}, c1{3}}}"


def run_scenario(scenario, *, options=None):
    async def main():
        server = PaxmlServer(options or ServerOptions(workers=2))
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.shutdown()
    return asyncio.run(main())


def test_pooled_tenants_reach_the_same_fixpoint():
    async def scenario(server, client):
        for name in ("alpha", "beta", "gamma"):
            created = await client.create(name, TC_SYSTEM)
            assert created["documents"] == ["d0", "d1"]
        # Least-loaded placement spreads three tenants over two workers.
        assert set(server.pool.placement) == {"alpha", "beta", "gamma"}
        assert len(set(server.pool.placement.values())) == 2
        for name in ("alpha", "beta", "gamma"):
            result = await client.run(name, timeout=30.0)
            assert result["fixpoint"]
            read = await client.read(name, "d1")
            assert read["tree"] == CLOSURE
    run_scenario(scenario)


def test_pooled_tenants_are_isolated_across_workers():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.create("beta", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        await client.run("beta", timeout=30.0)
        await client.inject("alpha", "d0", "t{c0{3}, c1{4}}")
        await client.run("alpha", timeout=30.0)
        alpha = await client.read("alpha", "d1")
        beta = await client.read("beta", "d1")
        assert "c1{4}" in alpha["tree"]
        assert beta["tree"] == CLOSURE
    run_scenario(scenario)


def test_migration_carries_state_in_a_bundle():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        source = server.pool.placement["alpha"]
        moved = await client.migrate("alpha")
        assert moved["from"] == source
        assert moved["to"] != source
        assert server.pool.placement["alpha"] == moved["to"]
        # State survived the hop, and the tenant keeps evolving there.
        read = await client.read("alpha", "d1")
        assert read["tree"] == CLOSURE
        await client.inject("alpha", "d0", "t{c0{3}, c1{4}}")
        await client.run("alpha", timeout=30.0)
        read = await client.read("alpha", "d1")
        assert "t{c0{3}, c1{4}}" in read["tree"]
    run_scenario(scenario)


def test_suspend_then_transparent_resume_in_the_pool():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        suspended = await client.request("suspend", tenant="alpha")
        assert suspended["suspended"]
        assert "alpha" in server.pool.spooled
        assert "alpha" not in server.pool.placement
        # The next touch re-places the tenant from its bundle.
        read = await client.read("alpha", "d1")
        assert read["tree"] == CLOSURE
        assert "alpha" in server.pool.placement
    run_scenario(scenario)


def test_stats_surface_placement_queues_and_replication_lag():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.create("beta", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)
        await client.run("beta", timeout=30.0)
        stats = await client.stats()
        shards = stats["shards"]
        assert [report["shard"] for report in shards] == [0, 1]
        assert sum(report["placed"] for report in shards) == 2
        # Nothing has been bundled yet: every logged graft is lag.
        assert sum(report["replication_lag"] for report in shards) > 0
        for report in shards:
            assert "queue_depth" in report and "cpu_seconds" in report
        by_name = {t["tenant"]: t for t in stats["tenants"]}
        assert by_name["alpha"]["shard"] == stats["placement"]["alpha"]
        assert "replication_lag" in by_name["alpha"]
        # The gauge reaches the registry, labelled by shard.
        gauge = stats["metrics"]["paxml_shard_replication_lag"]
        assert {s["labels"]["shard"] for s in gauge["samples"]} == {"0", "1"}
        # Per-tenant stats route to the owning shard; a spooled tenant
        # answers from the front with its bundle.
        beta = await client.stats(tenant="beta")
        assert beta["shard"] == stats["placement"]["beta"]
        await client.request("suspend", tenant="alpha")
        alpha = await client.stats(tenant="alpha")
        assert alpha["suspended"] and alpha["bundle"]
    run_scenario(scenario)


def test_top_renderer_shows_shard_lanes():
    stats = {
        "tenants": [
            {"tenant": "alpha", "suspended": False, "shard": 0,
             "productive": 5, "attempts": 9, "subscribers": 0,
             "queues": {"fresh": 1, "parked": 0, "tried": 2}},
            {"tenant": "beta", "suspended": True, "shard": None,
             "productive": 0, "attempts": 0, "subscribers": 0,
             "queues": {"fresh": 0, "parked": 0, "tried": 0}},
        ],
        "watchdog": {"deadline": 5.0},
        "slo": [],
        "shards": [
            {"shard": 0, "placed": 1, "queue_depth": 3,
             "replication_lag": 5, "cpu_seconds": 1.25},
            {"shard": 1, "down": True},
        ],
    }
    lines = _render_top(stats, {}, None)
    text = "\n".join(lines)
    assert "SHARD" in text and "LAG" in text
    assert any(line.startswith("0") and "5" in line for line in lines)
    assert "DOWN" in text
    # Tenant rows carry their shard column.
    alpha_row = next(line for line in lines if line.startswith("alpha"))
    assert " 0 " in alpha_row or alpha_row.split()[1] == "0"
    beta_row = next(line for line in lines if line.startswith("beta"))
    assert beta_row.split()[1] == "-"


def test_subscribe_is_rejected_for_pooled_tenants():
    async def scenario(server, client):
        await client.create("alpha", TC_SYSTEM)
        with pytest.raises(ServeError, match="pooled"):
            await client.subscribe(
                "alpha", "pair{c0{$x}} :- d1/r{t{c0{$x}}}")
    run_scenario(scenario)


def test_restart_with_workers_resumes_from_the_spool(tmp_path):
    spool = str(tmp_path / "spool")

    async def first(server, client):
        await client.create("alpha", TC_SYSTEM)
        await client.run("alpha", timeout=30.0)

    async def second(server, client):
        assert "alpha" in server.pool.spooled
        read = await client.read("alpha", "d1")
        assert read["tree"] == CLOSURE
        assert "alpha" in server.pool.placement

    run_scenario(first, options=ServerOptions(workers=2, spool_dir=spool))
    run_scenario(second, options=ServerOptions(workers=2, spool_dir=spool))
