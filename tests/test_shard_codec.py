"""The PXG1 compact batched graft codec and its checkpoint integration.

The codec (PR 9) is the wire format shared by shard replication and
checkpoint bundles: a batch of :class:`GraftRecord` packs into one
length-prefixed binary blob with a per-batch interned string table.
These tests pin the round-trip contract (field-for-field equality,
every marking kind, the optional obs/trace/shard side-channels), the
compression claim against the JSONL spelling, and backward
compatibility: format-1 bundles with one readable ``graft`` record per
line still load and resume.
"""

from __future__ import annotations

import base64
import json
import random

import pytest

from paxml import perf
from paxml.kernel import RunStatus, load_bundle, resume
from paxml.kernel.graft import CodecError, GraftRecord, decode_batch, encode_batch
from paxml.system import RewritingEngine, materialize
from paxml.tree import parse_tree
from paxml.tree.serializer import to_wire
from paxml.workloads import portal_system


@pytest.fixture(autouse=True)
def _clean_perf():
    perf.flags.set_all(True)
    perf.stats.reset()
    yield
    perf.flags.set_all(True)
    perf.stats.reset()


def wire(text: str) -> dict:
    return to_wire(parse_tree(text))


def make_record(step: int = 0, **overrides) -> GraftRecord:
    fields = dict(step=step, document="d", service="g",
                  site=41, trees=[wire("a{b{\"x\"}, !g{c}}")])
    fields.update(overrides)
    return GraftRecord(**fields)


class TestRoundtrip:
    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_single_record_field_for_field(self):
        record = make_record()
        assert decode_batch(encode_batch([record])) == [record]

    def test_every_marking_kind_roundtrips(self):
        record = make_record(trees=[
            wire('root{leaf, !call{p}, "string", 42, -17, 3.5, true, false}'),
        ])
        assert decode_batch(encode_batch([record])) == [record]

    def test_optional_fields_roundtrip(self):
        records = [
            make_record(0),
            make_record(1, obs=[{"text": "a{b}", "staged": True}]),
            make_record(2, trace={"trace_id": "t1", "span_id": "s1"}),
            make_record(3, shard=0),
            make_record(4, obs=[{"text": "c"}], trace={"trace_id": "t2"},
                        shard=7),
        ]
        assert decode_batch(encode_batch(records)) == records

    def test_unicode_and_hostile_strings(self):
        record = make_record(
            document="docs/日本語", service="svc-α",
            trees=[wire('`weird label {}`{"v\\"al‽"}')])
        assert decode_batch(encode_batch([record])) == [record]

    def test_random_batches(self):
        rng = random.Random(9)
        labels = ["a", "b", "长", "d-e"]

        def random_tree(depth: int) -> dict:
            kind = rng.randrange(6)
            if kind == 0 and depth < 3:
                children = [random_tree(depth + 1)
                            for _ in range(rng.randrange(3))]
                tree = {"m": {"l": rng.choice(labels)},
                        "u": rng.randrange(1, 1 << 40),
                        "v": rng.randrange(1, 1 << 40)}
                if children:
                    tree["c"] = children
                return tree
            marking = rng.choice([
                {"l": rng.choice(labels)}, {"f": rng.choice(labels)},
                {"v": rng.choice(labels)}, {"v": rng.randrange(-1000, 1000)},
                {"v": rng.random() * 100 - 50}, {"v": rng.random() < 0.5},
            ])
            return {"m": marking, "u": rng.randrange(1, 1 << 40),
                    "v": rng.randrange(1, 1 << 40)}

        records = [
            GraftRecord(step=i, document=rng.choice(labels),
                        service=rng.choice(labels),
                        site=rng.randrange(1, 1 << 32),
                        trees=[random_tree(0)
                               for _ in range(rng.randrange(1, 4))],
                        shard=rng.choice([None, 0, 1, 2]))
            for i in range(50)
        ]
        assert decode_batch(encode_batch(records)) == records

    def test_counters_tick(self):
        blob = encode_batch([make_record()])
        assert perf.stats.graft_batches_encoded == 1
        assert perf.stats.graft_batch_bytes == len(blob)


class TestCompactness:
    def test_packed_beats_jsonl_on_a_real_log(self):
        system = portal_system(6, materialized_fraction=0.3, n_irrelevant=2,
                               seed=3)
        engine = RewritingEngine(system)
        engine.run()
        records = engine.kernel.log.records
        assert len(records) >= 5
        jsonl = "\n".join(json.dumps(r.to_json_dict(), separators=(",", ":"))
                          for r in records).encode()
        packed = encode_batch(records)
        assert len(packed) < len(jsonl)
        assert decode_batch(packed) == records


class TestMalformed:
    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            decode_batch(b"NOPE" + b"\x00" * 8)

    def test_truncation_rejected(self):
        blob = encode_batch([make_record()])
        with pytest.raises(CodecError):
            decode_batch(blob[:len(blob) // 2])


class TestBundleCompatibility:
    def _checkpoint(self, tmp_path):
        system = portal_system(6, materialized_fraction=0.3, n_irrelevant=2,
                               seed=3)
        engine = RewritingEngine(system)
        engine.run(max_steps=6)
        path = tmp_path / "run.ckpt"
        engine.checkpoint(str(path))
        return path

    def test_new_bundles_carry_one_packed_batch(self, tmp_path):
        path = self._checkpoint(tmp_path)
        records = [json.loads(line)
                   for line in path.read_text().strip().splitlines()]
        assert records[0]["format"] == 2
        kinds = [r["kind"] for r in records]
        assert kinds.count("grafts") == 1 and "graft" not in kinds

    def test_legacy_per_line_grafts_still_load(self, tmp_path):
        """A format-1 bundle — readable ``graft`` records — still resumes."""
        path = self._checkpoint(tmp_path)
        records = [json.loads(line)
                   for line in path.read_text().strip().splitlines()]
        downgraded = []
        for record in records:
            if record["kind"] == "grafts":
                for graft in decode_batch(base64.b64decode(record["packed"])):
                    downgraded.append({"kind": "graft",
                                       **graft.to_json_dict()})
            else:
                if record["kind"] == "header":
                    record = dict(record, format=1)
                downgraded.append(record)
        legacy = tmp_path / "legacy.ckpt"
        legacy.write_text("\n".join(json.dumps(r) for r in downgraded) + "\n")

        assert (load_bundle(str(legacy)).grafts
                == load_bundle(str(path)).grafts)
        engine = resume(str(legacy), replay=True)
        result = engine.run()
        assert result.status is RunStatus.TERMINATED

        reference = portal_system(6, materialized_fraction=0.3,
                                  n_irrelevant=2, seed=3)
        materialize(reference)
        assert reference.equivalent_to(engine.system)
