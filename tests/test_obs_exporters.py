"""Exporter round-trips: JSONL, Chrome trace, Prometheus text."""

import io
import json

from paxml import materialize, obs
from paxml.obs.events import Event
from paxml.obs.exporters import (
    prometheus_text,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from paxml.obs.metrics import Registry
from paxml.runtime import AsyncRuntime, LocalTransport, RuntimeConfig


def traced_run(system):
    recorder = obs.TraceRecorder()
    with obs.tracing(recorder):
        materialize(system)
    return recorder


class TestEventJson:
    def test_round_trip(self):
        event = Event("retry", 7, 1.5, 1e9, {"service": "f", "attempt": 2})
        back = Event.from_json_dict(
            json.loads(json.dumps(event.to_json_dict())))
        assert back == event


class TestJsonl:
    def test_round_trip_to_string_buffer(self, example_3_2):
        recorder = traced_run(example_3_2)
        buffer = io.StringIO()
        written = write_jsonl(recorder.events, buffer)
        assert written == len(recorder.events) > 0
        buffer.seek(0)
        assert read_jsonl(buffer) == recorder.events

    def test_round_trip_to_path(self, example_3_2, tmp_path):
        recorder = traced_run(example_3_2)
        path = str(tmp_path / "run.events.jsonl")
        write_jsonl(recorder.events, path)
        assert read_jsonl(path) == recorder.events

    def test_provenance_rebuilt_identically(self, example_3_2, tmp_path):
        """The ISSUE's round-trip criterion: log → index ≡ live index."""
        recorder = traced_run(example_3_2)
        path = str(tmp_path / "run.events.jsonl")
        write_jsonl(recorder.events, path)
        rebuilt = obs.ProvenanceIndex.from_events(read_jsonl(path))
        live = recorder.provenance()
        assert len(live) > 0
        assert rebuilt == live
        assert rebuilt.derived_uids() == live.derived_uids()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        event = Event("run_started", 0, 0.0, 0.0, {})
        path.write_text(json.dumps(event.to_json_dict()) + "\n\n\n")
        assert read_jsonl(str(path)) == [event]


class TestChromeTrace:
    def test_empty_stream(self):
        assert to_chrome_trace([]) == {"traceEvents": [],
                                       "displayTimeUnit": "ms"}

    def test_sequential_run_structure(self, example_3_2):
        recorder = traced_run(example_3_2)
        trace = to_chrome_trace(recorder.events)
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and all(e["dur"] >= 0 for e in slices)
        assert all(e["ts"] >= 0 for e in events if "ts" in e)
        grafts = [e for e in events if e.get("cat") == "graft"]
        assert len(grafts) == len(recorder.of_kind("graft_applied"))
        lanes = [e for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        assert lanes, "each call site gets a named lane"

    def test_async_run_in_flight_counter(self, example_3_2):
        recorder = obs.TraceRecorder()
        with obs.tracing(recorder):
            AsyncRuntime(example_3_2,
                         transport=LocalTransport(example_3_2),
                         config=RuntimeConfig(concurrency=4, seed=0)).run()
        trace = to_chrome_trace(recorder.events)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert max(c["args"]["calls"] for c in counters) >= 1
        assert counters[-1]["args"]["calls"] == 0, "window drains to zero"

    def test_written_file_is_loadable_json(self, example_3_2, tmp_path):
        recorder = traced_run(example_3_2)
        path = str(tmp_path / "run.trace.json")
        write_chrome_trace(recorder.events, path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded == to_chrome_trace(recorder.events)


class TestPrometheusText:
    def test_families_and_labels(self):
        registry = Registry()
        registry.counter("x_total", "things",
                         ("k",)).labels(k='va"l').inc(2)
        registry.histogram("h_seconds").labels().observe(0.5)
        text = prometheus_text(registry)
        assert "# HELP x_total things" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{k="va\\"l"} 2.0' in text
        assert "# TYPE h_seconds summary" in text
        assert 'h_seconds{quantile="0.5"} 0.5' in text
        assert "h_seconds_count 1" in text
        assert "h_seconds_sum 0.5" in text

    def test_collectors_included(self):
        registry = Registry()
        registry.register_collector("pfx", lambda: {"hits": 3})
        text = prometheus_text(registry)
        assert "# TYPE pfx_hits counter" in text
        assert "pfx_hits 3" in text

    def test_global_registry_exposes_perf(self):
        text = prometheus_text()
        assert "paxml_perf_obs_events" in text
