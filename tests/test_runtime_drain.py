"""Graceful drain of the concurrent runtime (the shutdown fix).

A drain must not lose work: in-flight outcomes that complete during
cancellation are flushed, truly-cancelled and parked sites fold back
into the checkpointed frontier, and resuming the drained bundle reaches
the same fixpoint ``[I]`` as an uninterrupted run (Theorem 2.1 — the
drained prefix plus any fair continuation is itself a fair order).

The old behaviour this guards against: shutdown dropped parked calls on
the floor and discarded completed-but-unapplied in-flight results, so a
resumed run silently converged to a *smaller* limit.
"""

from __future__ import annotations

import asyncio

import pytest

from paxml.kernel import RunStatus, load_bundle, resume
from paxml.runtime import (
    AsyncRuntime,
    FaultInjector,
    LocalTransport,
    RuntimeConfig,
)
from paxml.system import materialize
from paxml.workloads import portal_system, random_edges, tc_system


def reference_limit(factory):
    system = factory()
    result = materialize(system)
    assert result.terminated
    return system


def make_tc():
    return tc_system(random_edges(5, 8, seed=42))


def make_portal():
    return portal_system(6, materialized_fraction=0.4, n_irrelevant=2,
                         seed=42)


def drain_then_resume(factory, bundle, *, drain_after, latency=0.0,
                      injector=None, config=None):
    """Run, drain mid-flight, resume the bundle, return the final system."""
    system = factory()
    runtime = AsyncRuntime(
        system, transport=LocalTransport(system, latency=latency or None),
        config=config or RuntimeConfig(concurrency=4, seed=1),
        injector=injector, checkpoint_path=str(bundle))

    async def scenario():
        task = asyncio.ensure_future(runtime.arun())
        await asyncio.sleep(drain_after)
        runtime.request_drain()
        return await task

    result = asyncio.run(scenario())
    if result.status is not RunStatus.DRAINED:
        # The run beat the timer — legal, but then this parametrization
        # exercised nothing; the fixed sleep below must be tuned so this
        # cannot happen under normal scheduling.
        pytest.fail(f"run finished ({result.status}) before the drain")

    resumed = resume(str(bundle), engine="async",
                     config=RuntimeConfig(concurrency=4, seed=2))
    final = resumed.run()
    assert final.status is RunStatus.TERMINATED
    return result, resumed.system


def test_drain_before_start_checkpoints_the_full_frontier(tmp_path):
    """The degenerate drain: stop before anything ran, lose nothing."""
    system = make_tc()
    bundle = tmp_path / "drain0.jsonl"
    runtime = AsyncRuntime(system, config=RuntimeConfig(concurrency=4),
                           checkpoint_path=str(bundle))
    runtime.request_drain()
    result = asyncio.run(runtime.arun())
    assert result.status is RunStatus.DRAINED
    assert result.steps == 0

    reference = reference_limit(make_tc)
    resumed = resume(str(bundle), engine="async")
    assert resumed.run().status is RunStatus.TERMINATED
    assert reference.equivalent_to(resumed.system)


@pytest.mark.parametrize("factory", [make_tc, make_portal],
                         ids=["tc", "portal"])
def test_drain_mid_flight_resumes_to_the_same_fixpoint(factory, tmp_path):
    """Cancel calls in flight; the resumed run still reaches ``[I]``."""
    reference = reference_limit(factory)
    bundle = tmp_path / "drain.jsonl"
    # Latency far above the drain point: the drain is guaranteed to land
    # inside the first wave of in-flight calls.
    result, system = drain_then_resume(
        factory, bundle, latency=0.2, drain_after=0.1,
        config=RuntimeConfig(concurrency=3, seed=1))
    assert reference.equivalent_to(system), (
        "drained+resumed limit diverged from [I]")


def test_drain_flushes_completed_in_flight_outcomes(tmp_path):
    """Outcomes that finish during cancellation land before the bundle.

    With zero transport latency every 'in-flight' task has in fact
    completed by the time the coordinator cancels it; the drain must
    apply those results (steps > 0 possible, nothing cancelled twice)
    rather than discard them.
    """
    reference = reference_limit(make_tc)
    bundle = tmp_path / "flush.jsonl"
    system = make_tc()
    runtime = AsyncRuntime(system, config=RuntimeConfig(concurrency=8),
                           checkpoint_path=str(bundle))

    async def scenario():
        task = asyncio.ensure_future(runtime.arun())
        await asyncio.sleep(0)      # let the first wave launch
        runtime.request_drain()
        return await task

    result = asyncio.run(scenario())
    assert result.status is RunStatus.DRAINED
    resumed = resume(str(bundle), engine="async")
    assert resumed.run().status is RunStatus.TERMINATED
    assert reference.equivalent_to(resumed.system)


def test_drain_preserves_parked_calls(tmp_path):
    """The regression proper: a parked (circuit-broken) call survives.

    Every first attempt faults and the breaker opens after one failure
    with a long cooldown, so the only live call is parked when the drain
    lands.  The old shutdown dropped it; the fix folds it back into the
    frontier, and the clean resumed run completes it.
    """
    reference = reference_limit(lambda: tc_system([(1, 2), (2, 3)]))
    bundle = tmp_path / "parked.jsonl"
    system = tc_system([(1, 2), (2, 3)])
    injector = FaultInjector(seed=3, error_rate=1.0, max_attempt=1)
    config = RuntimeConfig(concurrency=2, seed=3, breaker_threshold=1,
                           breaker_cooldown=30.0, backoff_base=0.001,
                           backoff_max=0.01, max_attempts=5)
    runtime = AsyncRuntime(system, config=config, injector=injector,
                           checkpoint_path=str(bundle))

    async def scenario():
        task = asyncio.ensure_future(runtime.arun())
        await asyncio.sleep(0.1)    # breaker is open, sites parked
        assert runtime.kernel.scheduler.parked_count() > 0
        runtime.request_drain()
        return await task

    result = asyncio.run(scenario())
    assert result.status is RunStatus.DRAINED

    # The parked sites are in the bundle's frontier, not dropped.
    drained_kernel = runtime.kernel
    fresh = load_bundle(str(bundle)).frontier["fresh"]
    assert len(fresh) >= drained_kernel.scheduler.parked_count() > 0

    resumed = resume(str(bundle), engine="async",
                     config=RuntimeConfig(concurrency=2))
    assert resumed.run().status is RunStatus.TERMINATED
    assert reference.equivalent_to(resumed.system), (
        "parked call was lost across the drain")


def test_drain_requeues_cancelled_sites_in_live_kernel(tmp_path):
    """After a drain the same runtime can keep going in-process too:
    cancelled sites re-enter the frontier, and a fresh ``arun`` on the
    same kernel finishes the job without a bundle round-trip."""
    reference = reference_limit(make_tc)
    system = make_tc()
    runtime = AsyncRuntime(
        system, transport=LocalTransport(system, latency=0.2),
        config=RuntimeConfig(concurrency=3, seed=9))

    async def scenario():
        task = asyncio.ensure_future(runtime.arun())
        await asyncio.sleep(0.1)
        runtime.request_drain()
        first = await task
        assert first.status is RunStatus.DRAINED
        second = await runtime.arun()
        assert second.status is RunStatus.TERMINATED

    asyncio.run(scenario())
    assert reference.equivalent_to(system)
