"""The compiled query planner against the naive matcher as oracle.

The naive backtracking join of :mod:`paxml.query.matching` is retained
precisely to serve as the oracle here: on randomized systems and
documents the planned evaluation (selectivity-ordered siblings, constant
subpattern hash-consing, indexed candidates, undo-log bindings, pushed
inequalities) must produce the same *reduced forests* for full and delta
evaluation — directly, through whole-system materialization, and through
the concurrent runtime under fault injection.

Reduced forests (not raw assignment lists) are the right equality: the
planner may enumerate embeddings in a different order and through index
entries holding pruned-but-subsumed leftovers, all of which collapses
under forest reduction — the paper's notion of "same answer".
"""

from __future__ import annotations

import pytest

from paxml import perf
from paxml.cli import main as cli_main
from paxml.query import compile_query, describe_plan, parse_query
from paxml.query.incremental import IncrementalQueryEvaluator
from paxml.query.matching import enumerate_assignments, evaluate_snapshot
from paxml.query.pattern import RegexSpec, pattern_to_text
from paxml.query.plan import _selectivity_rank
from paxml.query.variables import TreeVar, ValueVar
from paxml.runtime import AsyncRuntime, FaultInjector, RuntimeConfig, RuntimeStatus
from paxml.system import materialize
from paxml.system.invocation import graft_answers, find_path
from paxml.tree import (
    Forest,
    child_bucket,
    child_buckets,
    is_subsumed,
    label,
    marking_set,
    parse_tree,
    probe_bucket,
    val,
)
from paxml.tree.index import _probe_scan
from paxml.tree.node import Label, Value
from paxml.tree.reduction import reduce_forest
from paxml.workloads import (
    chain_edges,
    portal_system,
    random_acyclic_system,
    random_edges,
    random_tree,
    relation_tree,
    tc_system,
)

JOIN2 = "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}"


@pytest.fixture(autouse=True)
def _restore_perf_flags():
    """Each test may flip engine flags; leave the process as it found it."""
    yield
    perf.flags.set_all(True)
    perf.clear_caches()
    perf.stats.reset()


def _planner_mode(on: bool) -> None:
    perf.flags.set_all(True)
    perf.flags.query_planner = on
    perf.flags.child_index = on
    perf.clear_caches()
    perf.stats.reset()


def _reduced(query, documents) -> Forest:
    return evaluate_snapshot(query, documents)


# ----------------------------------------------------------------------
# property: planned ≡ naive, full evaluation
# ----------------------------------------------------------------------

QUERIES = [
    JOIN2,
    "out{$x} :- d/@r{t{c0{$x}}}",
    "pair{$x, *T} :- d/r{t{c0{$x}, c1{*T}}}",
    "p{@l} :- d/r{@l{c0}}",
    "p{c0{$x}, c1{$y}} :- d/r{t{c0{$x}, c1{$y}}}, $x != $y",
]


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("rule", QUERIES, ids=lambda r: r.split(" :- ")[0])
def test_planned_equals_naive_on_random_relations(rule, seed):
    query = parse_query(rule)
    document = relation_tree(random_edges(6 + seed % 5, 10 + seed, seed=seed))
    for extra in range(seed % 3):
        document.add_child(random_tree(5 + extra, seed=seed * 7 + extra))
    documents = {"d": document}

    _planner_mode(False)
    naive = _reduced(query, documents)
    _planner_mode(True)
    planned = _reduced(query, documents)
    assert planned.equivalent_to(naive)


@pytest.mark.parametrize("seed", range(8))
def test_planned_equals_naive_on_random_trees(seed):
    query = parse_query("out{@l{$v}} :- d/@r{@l{$v}}")
    documents = {"d": random_tree(30 + seed * 5, seed=seed, label_pool=3)}
    _planner_mode(False)
    naive = _reduced(query, documents)
    _planner_mode(True)
    planned = _reduced(query, documents)
    assert planned.equivalent_to(naive)


# ----------------------------------------------------------------------
# property: planned ≡ naive, delta evaluation over growing documents
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_planned_delta_equals_naive_delta(seed):
    edges = random_edges(6, 24 + seed, seed=seed)
    query = parse_query(JOIN2)

    def run(planner: bool):
        _planner_mode(planner)
        document = relation_tree(edges[:12])
        evaluator = IncrementalQueryEvaluator(query)
        accumulated = []
        for batch in range(4):
            for a, b in edges[12 + batch * 3:12 + (batch + 1) * 3]:
                document.add_child(
                    label("t", label("c0", val(a)), label("c1", val(b))))
            accumulated.extend(
                evaluator.evaluate_delta({"d": document}, site="site"))
        return reduce_forest(accumulated)

    naive, planned = run(False), run(True)
    assert Forest(planned).equivalent_to(Forest(naive))


# ----------------------------------------------------------------------
# property: planned ≡ naive through whole-system materialization
# ----------------------------------------------------------------------

SYSTEM_CASES = (
    [("acyclic", seed) for seed in range(6)]
    + [("tc", seed) for seed in range(6)]
    + [("portal", seed) for seed in range(6)]
)


def _build_system(family: str, seed: int):
    if family == "acyclic":
        return random_acyclic_system(2 + seed % 3, seed=seed, values_per_doc=3)
    if family == "tc":
        return tc_system(random_edges(5, 6 + seed % 4, seed=seed))
    return portal_system(4 + seed % 3, materialized_fraction=0.4,
                         n_irrelevant=2, seed=seed)


@pytest.mark.parametrize("case", SYSTEM_CASES, ids=lambda c: f"{c[0]}-{c[1]}")
def test_materialized_limits_agree(case):
    family, seed = case
    _planner_mode(False)
    naive_system = _build_system(family, seed)
    assert materialize(naive_system).terminated

    _planner_mode(True)
    planned_system = _build_system(family, seed)
    assert materialize(planned_system).terminated
    assert planned_system.equivalent_to(naive_system)


FAULT_CASES = [("acyclic", 3), ("tc", 2), ("tc", 5), ("portal", 1)]


@pytest.mark.parametrize("case", FAULT_CASES, ids=lambda c: f"{c[0]}-{c[1]}")
def test_planned_limit_survives_fault_injection(case):
    """The runtime oracle: planner on + injected faults ≡ naive sequential."""
    family, seed = case
    _planner_mode(False)
    naive_system = _build_system(family, seed)
    assert materialize(naive_system).terminated

    _planner_mode(True)
    planned_system = _build_system(family, seed)
    injector = FaultInjector(seed=seed, drop_rate=0.15, error_rate=0.2,
                             delay_rate=0.15, duplicate_rate=0.15,
                             delay_seconds=0.002, max_attempt=2)
    config = RuntimeConfig(concurrency=6, seed=seed, call_timeout=0.05,
                           max_attempts=5, backoff_base=0.001,
                           backoff_max=0.01, breaker_threshold=10_000)
    result = AsyncRuntime(planned_system, config=config,
                          injector=injector).run()
    assert result.status is RuntimeStatus.TERMINATED
    assert not result.failures
    assert planned_system.equivalent_to(naive_system)


# ----------------------------------------------------------------------
# compiler unit tests
# ----------------------------------------------------------------------


def test_sibling_order_puts_constants_before_variables():
    query = parse_query(
        "h{$v} :- d/r{*T, @l{x}, c{$v}, k{a{b}}, #f{y}, [a.b]{z}}")
    root = compile_query(query).atoms[0].root
    ranks = [_selectivity_rank(child)[0] for child in root.children]
    assert ranks == sorted(ranks), "children not in selectivity order"
    # Constant subpatterns lead, the tree variable trails.
    assert root.children[0].const_tree is not None
    assert isinstance(root.children[-1].spec, TreeVar)
    specs = [child.spec for child in root.children]
    assert any(isinstance(s, RegexSpec) for s in specs)
    # The constant-rooted-but-variable-bearing sibling c{$v} sorts after
    # the fully constant k{a{b}} and before the regex and variable specs.
    assert isinstance(root.children[1].spec, Label)
    assert root.children[1].const_tree is None


def test_constant_sibling_dedup_keeps_the_antichain():
    # a{b{c}} subsumes both duplicates and the bare a{b}; one conjunct stays.
    query = parse_query("h{x} :- d/r{a{b{c}}, a{b{c}}, a{b}, q{$v}}")
    root = compile_query(query).atoms[0].root
    consts = [c for c in root.children if c.const_tree is not None]
    assert len(consts) == 1
    assert pattern_to_text(consts[0].to_pattern()) == "a{b{c}}"
    # Dropping dominated conjuncts must not change answers.
    document = parse_tree('r{a{b{c}}, q{"1"}}')
    _planner_mode(True)
    planned = _reduced(query, {"d": document})
    _planner_mode(False)
    naive = _reduced(query, {"d": document})
    assert planned.equivalent_to(naive)
    assert len(planned) == 1


def test_inequalities_compiled_to_binding_sites():
    query = parse_query(
        'h{$x} :- d/r{a{$x}, b{$y}, c{$z}}, $x != $y, $y != "3"')
    plan = compile_query(query)
    by_var = {str(v): [str(o) for o in others]
              for v, others in plan.ineq_by_var.items()}
    assert by_var["$x"] == ["$y"]
    assert set(by_var["$y"]) == {"$x", '"3"'}
    assert "$z" not in by_var
    document = parse_tree('r{a{"1"}, a{"2"}, b{"1"}, b{"3"}, c{"9"}}')
    _planner_mode(True)
    planned = _reduced(query, {"d": document})
    _planner_mode(False)
    naive = _reduced(query, {"d": document})
    assert planned.equivalent_to(naive)


def test_always_false_inequality_short_circuits():
    query = parse_query('h{x} :- d/r{a}, "1" != "1"')
    assert compile_query(query).always_false
    _planner_mode(True)
    assert enumerate_assignments(query, {"d": parse_tree("r{a}")}) == []


def test_join2_uses_the_value_probe():
    query = parse_query(JOIN2)
    document = relation_tree(chain_edges(8))
    _planner_mode(True)
    planned = _reduced(query, {"d": document})
    assert perf.stats.probe_lookups > 0
    assert len(planned) == 7  # chain of 8 edges has 7 length-2 paths


# ----------------------------------------------------------------------
# index unit tests
# ----------------------------------------------------------------------


def test_child_buckets_follow_appends():
    _planner_mode(True)
    tree = parse_tree("r{a, a, b}")
    assert len(child_bucket(tree, Label("a"))) == 2
    tree.add_child(label("a"))
    assert len(child_bucket(tree, Label("a"))) == 3  # version bump invalidated
    assert child_bucket(tree, Label("zzz")) == ()


def test_probe_bucket_matches_linear_scan():
    for seed in range(6):
        tree = relation_tree(random_edges(4, 12, seed=seed))
        tree.add_child(random_tree(8, seed=seed))
        _planner_mode(True)
        for value in {leaf.marking for node in tree.iter_nodes()
                      for leaf in node.children
                      if isinstance(leaf.marking, Value)}:
            indexed = probe_bucket(tree, Label("t"), Label("c0"), value)
            scanned = _probe_scan(tree, Label("t"), Label("c0"), value)
            assert list(indexed) == scanned


def test_graft_path_patches_the_index_in_place():
    _planner_mode(True)
    system = tc_system(chain_edges(4))
    document = system.documents["d1"]
    # Warm the parent's bucket entry, then graft through the real path.
    child_buckets(document.root)
    call = next(n for n in document.root.iter_nodes() if n.is_function)
    path = find_path(document.root, call)
    before = perf.stats.index_graft_patches
    inserted = graft_answers(
        path, Forest([label("t", label("c0", val(9)), label("c1", val(9)))]))
    assert inserted
    assert perf.stats.index_graft_patches == before + 1
    # The patched entry serves the post-graft child set.
    assert inserted[0] in child_bucket(document.root, inserted[0].marking)


def test_marking_set_reject_is_sound_for_non_injective_simulations():
    _planner_mode(True)
    # a{b, b, b} ⊑ a{b}: counts must not matter, only marking presence.
    assert is_subsumed(parse_tree("a{b, b, b}"), parse_tree("a{b}"))
    assert marking_set(parse_tree("a{b{c}}")) == {
        Label("a"), Label("b"), Label("c")}
    # With the columnar store on the entry reject is the packed-bitset
    # test; with it off, the PR 4 cached-frozenset subset test.  Set
    # explicitly: this test exercises both paths whatever the CI
    # flag-matrix job disabled by default.
    perf.flags.columnar_store = True
    before = perf.stats.bitset_rejects
    assert not is_subsumed(parse_tree("a{x}"), parse_tree("a{y}"))
    assert perf.stats.bitset_rejects > before
    perf.flags.columnar_store = False
    before = perf.stats.subsumption_early_rejects
    assert not is_subsumed(parse_tree("a{x}"), parse_tree("a{y}"))
    assert perf.stats.subsumption_early_rejects > before


# ----------------------------------------------------------------------
# switchboard fallback and CLI
# ----------------------------------------------------------------------


def test_flag_off_routes_through_the_naive_matcher():
    query = parse_query(JOIN2)
    documents = {"d": relation_tree(chain_edges(5))}
    _planner_mode(False)
    enumerate_assignments(query, documents)
    assert perf.stats.planned_evaluations == 0
    _planner_mode(True)
    enumerate_assignments(query, documents)
    assert perf.stats.planned_evaluations == 1


def test_describe_plan_mentions_order_and_probe():
    text = describe_plan(parse_query(JOIN2),
                         {"d": relation_tree(chain_edges(3))})
    assert "join order" in text
    assert "probe" in text


def test_cli_plan_subcommand(capsys):
    path = "examples/systems/transitive_closure.axml"
    assert cli_main(["plan", path]) == 0
    out = capsys.readouterr().out
    assert "service !f" in out and "join order" in out
    assert cli_main(["plan", path, JOIN2.replace("d/", "d1/")]) == 0
    assert "rule:" in capsys.readouterr().out


def test_cli_explain_prints_plan_order(capsys):
    path = "examples/systems/transitive_closure.axml"
    assert cli_main(["explain", path]) == 0
    out = capsys.readouterr().out
    assert "plan !f:" in out and "plan !g:" in out
