"""Unit tests for the shared two-queue fair scheduler (paxml.kernel).

Covers the properties both engines rely on: round-robin fairness, the
two promotion orders after a productive step, park/unpark ordering for
circuit-breaker cooldowns, the attempt budget, suppression, and the
frontier snapshot/restore roundtrip.
"""

import pytest

from paxml.kernel import CallScheduler, POLICIES
from paxml.tree.document import Document
from paxml.tree.node import fun, label


def make_sites(count, name="d"):
    """One document with ``count`` sibling call sites, plus the sites."""
    calls = [fun(f"s{i}") for i in range(count)]
    document = Document(name, label("r", *calls))
    return document, [(document, node) for document, node in
                      ((document, call) for call in calls)]


class TestEnqueueAndPop:
    def test_round_robin_pops_in_fifo_order(self):
        document, sites = make_sites(4)
        scheduler = CallScheduler("round_robin")
        for _, node in sites:
            assert scheduler.enqueue(document, node)
        popped = [scheduler.pop() for _ in range(4)]
        assert popped == sites

    def test_lifo_pops_newest_first(self):
        document, sites = make_sites(3)
        scheduler = CallScheduler("lifo")
        for _, node in sites:
            scheduler.enqueue(document, node)
        popped = [scheduler.pop() for _ in range(3)]
        assert popped == list(reversed(sites))

    def test_random_is_seed_deterministic_and_complete(self):
        document, sites = make_sites(6)
        orders = []
        for _ in range(2):
            scheduler = CallScheduler("random", seed=7)
            for _, node in sites:
                scheduler.enqueue(document, node)
            orders.append([scheduler.pop() for _ in range(6)])
        assert orders[0] == orders[1]
        assert sorted(n.uid for _, n in orders[0]) == sorted(
            n.uid for _, n in sites)

    def test_duplicate_enqueue_is_dropped(self):
        document, sites = make_sites(1)
        scheduler = CallScheduler()
        assert scheduler.enqueue(*sites[0])
        assert not scheduler.enqueue(*sites[0])
        assert scheduler.fresh_count() == 1

    def test_suppressed_sites_never_enter(self):
        document, sites = make_sites(3)
        scheduler = CallScheduler(suppressed=[sites[1][1]])
        for site in sites:
            scheduler.enqueue(*site)
        assert scheduler.fresh_count() == 2
        popped = {node.uid for _, node in
                  (scheduler.pop() for _ in range(2))}
        assert sites[1][1].uid not in popped

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CallScheduler("unfair")


class TestFairness:
    @pytest.mark.parametrize("policy", ["round_robin", "random"])
    def test_every_site_is_eventually_popped(self, policy):
        """Fair policies drain each site at least once per full cycle:
        popping n times from an n-site queue (requeueing each pop) must
        touch every site."""
        document, sites = make_sites(8)
        scheduler = CallScheduler(policy, seed=3)
        for site in sites:
            scheduler.enqueue(*site)
        seen = set()
        for _ in range(len(sites)):
            site = scheduler.pop()
            seen.add(site[1].uid)
            scheduler.mark_tried(site)
        assert seen == {node.uid for _, node in sites}

    def test_termination_certificate_is_empty_fresh(self):
        document, sites = make_sites(2)
        scheduler = CallScheduler()
        for site in sites:
            scheduler.enqueue(*site)
        while scheduler.has_fresh():
            scheduler.mark_tried(scheduler.pop())
        assert not scheduler.has_fresh()
        assert scheduler.tried_count() == 2


class TestPromotion:
    def test_promote_front_puts_tried_before_fresh(self):
        """The sequential engine's order: after a productive step, proven
        no-ops re-enter AHEAD of the untried remainder."""
        document, sites = make_sites(3)
        scheduler = CallScheduler(promote_front=True)
        for site in sites:
            scheduler.enqueue(*site)
        first = scheduler.pop()          # sites[0]
        scheduler.mark_tried(first)
        scheduler.promote_tried()        # productive step elsewhere
        assert scheduler.pop() == first  # tried re-enters at the front

    def test_promote_back_puts_tried_after_fresh(self):
        """The async runtime's order: proven no-ops re-enter BEHIND the
        untried remainder."""
        document, sites = make_sites(3)
        scheduler = CallScheduler(promote_front=False)
        for site in sites:
            scheduler.enqueue(*site)
        first = scheduler.pop()
        scheduler.mark_tried(first)
        scheduler.promote_tried()
        assert scheduler.pop() == sites[1]
        assert scheduler.pop() == sites[2]
        assert scheduler.pop() == first  # tried re-enters at the back

    def test_promotion_without_tried_is_noop(self):
        document, sites = make_sites(2)
        scheduler = CallScheduler()
        for site in sites:
            scheduler.enqueue(*site)
        scheduler.promote_tried()
        assert scheduler.pop() == sites[0]


class TestParking:
    def test_unpark_respects_ready_times(self):
        document, sites = make_sites(3)
        scheduler = CallScheduler()
        scheduler.park(sites[0], ready_at=10.0)
        scheduler.park(sites[1], ready_at=20.0)
        scheduler.park(sites[2], ready_at=15.0)
        assert scheduler.parked_count() == 3
        assert scheduler.next_parked_ready() == 10.0
        assert scheduler.unpark(now=15.0) == 2      # sites 0 and 2
        assert scheduler.parked_count() == 1
        assert scheduler.next_parked_ready() == 20.0
        # Cooled-down sites re-enter fresh in park order.
        assert scheduler.pop() == sites[0]
        assert scheduler.pop() == sites[2]
        assert scheduler.unpark(now=25.0) == 1
        assert scheduler.pop() == sites[1]

    def test_unpark_before_ready_moves_nothing(self):
        document, sites = make_sites(1)
        scheduler = CallScheduler()
        scheduler.park(sites[0], ready_at=5.0)
        assert scheduler.unpark(now=1.0) == 0
        assert not scheduler.has_fresh()


class TestBudget:
    def test_budget_spent_after_enough_attempts(self):
        scheduler = CallScheduler(budget=2)
        assert not scheduler.budget_spent()
        scheduler.note_attempt()
        assert not scheduler.budget_spent()
        scheduler.note_attempt()
        assert scheduler.budget_spent()

    def test_no_budget_is_never_spent(self):
        scheduler = CallScheduler()
        for _ in range(100):
            scheduler.note_attempt()
        assert not scheduler.budget_spent()


class TestFrontierRoundtrip:
    def test_frontier_folds_parked_and_extra_into_fresh(self):
        document, sites = make_sites(4)
        scheduler = CallScheduler(seed=11, budget=50)
        scheduler.enqueue(*sites[0])
        scheduler.enqueue(*sites[1])
        scheduler.mark_tried(scheduler.pop())       # sites[0] -> tried
        scheduler.park(sites[2], ready_at=99.0)
        scheduler.note_attempt()
        frontier = scheduler.frontier(extra_fresh=[sites[3]])
        fresh_uids = [uid for _, uid in frontier["fresh"]]
        assert fresh_uids == [sites[3][1].uid, sites[1][1].uid,
                              sites[2][1].uid]
        assert [uid for _, uid in frontier["tried"]] == [sites[0][1].uid]
        assert frontier["attempts"] == 1

    def test_restore_rebuilds_queues_and_drops_unresolvable(self):
        document, sites = make_sites(3)
        scheduler = CallScheduler()
        for site in sites[:2]:
            scheduler.enqueue(*site)
        scheduler.mark_tried(scheduler.pop())
        frontier = scheduler.frontier()
        frontier["fresh"].append(["d", 999_999_999])  # vanished node

        by_uid = {node.uid: (document, node) for _, node in sites}
        restored = CallScheduler()
        restored.restore_frontier(frontier,
                                  lambda name, uid: by_uid.get(uid))
        assert restored.fresh_count() == 1
        assert restored.tried_count() == 1
        assert restored.pop() == sites[1]
        assert restored.is_enqueued(sites[0][1])

    def test_all_policies_snapshot_their_identity(self):
        for policy in POLICIES:
            scheduler = CallScheduler(policy, seed=5)
            frontier = scheduler.frontier()
            assert frontier["policy"] == policy
            assert frontier["seed"] == 5
