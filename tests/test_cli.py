"""Tests for the command-line interface and the .axml file format."""

import json

import pytest

from paxml import perf
from paxml.cli import main, parse_system_file

TC_FILE = """
% Example 3.2
@document d0
r{t{c0{1}, c1{2}}, t{c0{2}, c1{3}}}

@document d1
r{!g, !f}

@service g
t{c0{$x}, c1{$y}} :- d0/r{t{c0{$x}, c1{$y}}}

@service f
t{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$z}}, t{c0{$z}, c1{$y}}}
"""

REGEX_FILE = """
@document cat
catalogue{part{name{"engine"}, part{name{"piston"}}}}
"""


@pytest.fixture
def tc_path(tmp_path):
    path = tmp_path / "tc.axml"
    path.write_text(TC_FILE)
    return str(path)


@pytest.fixture
def cat_path(tmp_path):
    path = tmp_path / "cat.axml"
    path.write_text(REGEX_FILE)
    return str(path)


class TestFileFormat:
    def test_parses_documents_and_services(self):
        system = parse_system_file(TC_FILE)
        assert set(system.documents) == {"d0", "d1"}
        assert set(system.services) == {"f", "g"}
        assert system.is_simple

    def test_union_services_via_semicolons(self):
        system = parse_system_file("""
@document d
a{!u}
@service u
x :- d/a; y :- d/a
""")
        assert len(system.services["u"].queries) == 2

    def test_comments_and_blank_lines(self):
        system = parse_system_file("% header\n\n@document d\na{b} % trailing\n")
        assert system.documents["d"].root.size() == 2

    @pytest.mark.parametrize("bad", [
        "stray content",
        "@document\nx",
        "@chapter d\nx",
        "@document d\n",
        "@document d\na{b}\n@document d\nc",
        "@service s\nnot a rule",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SystemExit):
            parse_system_file(bad)


class TestCommands:
    def test_materialize(self, tc_path, capsys):
        assert main(["materialize", tc_path]) == 0
        out = capsys.readouterr().out
        assert "status: terminated" in out
        assert "t{c0{1}, c1{3}}" in out

    def test_run_async(self, tc_path, capsys):
        assert main(["run-async", tc_path, "--concurrency", "4",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "status: terminated" in out
        assert "t{c0{1}, c1{3}}" in out

    def test_run_async_metrics(self, tc_path, capsys):
        assert main(["run-async", tc_path, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert '"in_flight_peak"' in out
        assert '"latency"' in out

    def test_run_async_with_faults_still_terminates(self, tc_path, capsys):
        assert main(["run-async", tc_path, "--fault-rate", "0.4",
                     "--seed", "7", "--max-attempts", "6",
                     "--call-timeout", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "status: terminated" in out
        assert "t{c0{1}, c1{3}}" in out

    def test_query_snapshot(self, tc_path, capsys):
        assert main(["query", tc_path,
                     "p{$x} :- d0/r{t{c0{$x}}}"]) == 0
        out = capsys.readouterr().out
        assert "p{1}" in out and "p{2}" in out

    def test_query_full(self, tc_path, capsys):
        assert main(["query", tc_path, "--full",
                     "p{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"]) == 0
        out = capsys.readouterr().out
        assert "p{c0{1}, c1{3}}" in out

    def test_query_lazy(self, tc_path, capsys):
        assert main(["query", tc_path, "--lazy",
                     "p{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}"]) == 0
        out = capsys.readouterr().out
        assert "lazy:" in out and "p{c0{1}, c1{3}}" in out

    def test_query_empty_result(self, tc_path, capsys):
        assert main(["query", tc_path, "p :- d0/never"]) == 0
        assert "(empty result)" in capsys.readouterr().out

    def test_analyze(self, tc_path, capsys):
        assert main(["analyze", tc_path]) == 0
        out = capsys.readouterr().out
        assert "simple:    True" in out
        assert "termination: terminates" in out

    def test_analyze_divergent(self, tmp_path, capsys):
        path = tmp_path / "div.axml"
        path.write_text("@document d\na{!f}\n@service f\na{!f} :-\n")
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "termination: diverges" in out
        assert "witness" in out

    def test_translate(self, cat_path, capsys):
        assert main(["translate", cat_path,
                     'c{$n} :- cat/catalogue{[part+.name]{$n}}']) == 0
        out = capsys.readouterr().out
        assert "@service axprop" in out
        assert "simplicity preserved: True" in out

    def test_export(self, tc_path, capsys):
        assert main(["export", tc_path, "d0"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("<r") and 'type="int"' in out

    def test_export_unknown_document(self, tc_path, capsys):
        with pytest.raises(SystemExit):
            main(["export", tc_path, "nope"])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["analyze", "/does/not/exist.axml"])

    def test_bad_query_syntax(self, tc_path):
        with pytest.raises(SystemExit):
            main(["query", tc_path, "not a rule"])

    def test_shipped_example_files(self, capsys):
        import os

        base = os.path.join(os.path.dirname(__file__), "..",
                            "examples", "systems")
        for name in ("transitive_closure", "jazz_portal", "divergent"):
            assert main(["analyze", os.path.join(base, f"{name}.axml")]) == 0
            capsys.readouterr()


class TestObservabilityCommands:
    def test_explain_lists_grafts(self, tc_path, capsys):
        assert main(["explain", tc_path]) == 0
        out = capsys.readouterr().out
        assert "grafts: 3" in out
        assert out.count("grafted by rule 0 of service") == 3
        assert "'f'" in out and "'g'" in out

    def test_explain_graft_chain(self, tc_path, capsys):
        assert main(["explain", tc_path, "--graft", "-1"]) == 0
        out = capsys.readouterr().out
        assert "grafted by rule 0 of service 'f'" in out
        assert "valuation:" in out
        assert "matched nodes:" in out
        assert "initial data" in out

    def test_explain_graft_out_of_range(self, tc_path):
        with pytest.raises(SystemExit):
            main(["explain", tc_path, "--graft", "99"])

    def test_explain_unknown_node(self, tc_path):
        with pytest.raises(SystemExit):
            main(["explain", tc_path, "--node", "999999999"])

    def test_trace_writes_jsonl_and_chrome_trace(self, tc_path, tmp_path,
                                                 capsys):
        base = str(tmp_path / "run")
        assert main(["trace", tc_path, "--out", base]) == 0
        out = capsys.readouterr().out
        assert "status: terminated" in out
        assert "graft_applied: 2" in out
        with open(base + ".events.jsonl") as handle:
            lines = [json.loads(line) for line in handle]
        # initial call_scheduled events precede run_started (engine
        # construction schedules the initial frontier)
        assert {"run_started", "call_scheduled"} <= {l["kind"] for l in lines}
        assert lines[-1]["kind"] == "run_finished"
        with open(base + ".trace.json") as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_trace_async_engine(self, tc_path, tmp_path, capsys):
        base = str(tmp_path / "arun")
        assert main(["trace", tc_path, "--engine", "async",
                     "--out", base]) == 0
        out = capsys.readouterr().out
        assert "engine: async" in out
        with open(base + ".events.jsonl") as handle:
            kinds = {json.loads(line)["kind"] for line in handle}
        assert "attempt_started" in kinds and "graft_applied" in kinds

    def test_trace_metrics_flag_prints_prometheus(self, tc_path, tmp_path,
                                                  capsys):
        assert main(["trace", tc_path, "--out",
                     str(tmp_path / "m")]) == 0
        capsys.readouterr()
        assert main(["trace", tc_path, "--metrics", "--out",
                     str(tmp_path / "m2")]) == 0
        out = capsys.readouterr().out
        assert "# TYPE paxml_rewrite_events_total counter" in out
        assert "paxml_perf_obs_events" in out


class TestPerfReset:
    def test_counters_do_not_leak_between_runs(self, tc_path, capsys):
        """Regression: main() must start every run from zeroed perf stats."""
        assert main(["materialize", tc_path]) == 0
        first = perf.stats.snapshot()
        assert main(["materialize", tc_path]) == 0
        second = perf.stats.snapshot()
        capsys.readouterr()
        assert first["full_evaluations"] > 0
        assert first == second  # identical runs, not accumulated doubles

    def test_reset_applies_across_commands(self, tc_path, capsys):
        assert main(["materialize", tc_path]) == 0
        assert perf.stats.full_evaluations > 0
        assert main(["export", tc_path, "d0"]) == 0
        capsys.readouterr()
        assert perf.stats.full_evaluations == 0
