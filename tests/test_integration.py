"""Cross-module integration tests: the analyses composed end to end."""

import pytest

from paxml import (
    AXMLSystem,
    Status,
    Verdict,
    analyze_termination,
    build_graph_representation,
    eager_evaluate,
    evaluate_snapshot,
    fire_once,
    is_acyclic,
    is_q_finite,
    is_q_stable,
    lazy_evaluate,
    materialize,
    parse_query,
    strip_forest,
    translate,
)
from paxml.analysis import snapshot_over_graphs
from paxml.datalog import compile_program, evaluate, transitive_closure_program
from paxml.workloads import chain_edges, portal_system, random_acyclic_system, tc_system


class TestPsiComposesWithAnalyses:
    """ψ output feeds the simple-system machinery (the point of Prop. 5.1)."""

    def test_translated_system_termination_decidable(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}}"})
        query = parse_query("found :- d/lib{[a.b]}")
        translated = translate(system, query)
        assert translated.preserves_simplicity
        report = analyze_termination(translated.system)
        assert report.terminates  # annotation propagation reaches fixpoint

    def test_translated_query_over_graph_representation(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}}"})
        query = parse_query("found :- d/lib{[a.b]}")
        translated = translate(system, query)
        representation = build_graph_representation(translated.system)
        result = snapshot_over_graphs(representation, translated.query)
        assert len(strip_forest(result)) == 1

    def test_lazy_evaluation_of_translated_query(self):
        system = AXMLSystem.build(documents={"d": "lib{a{b{c}}, other{x}}"})
        query = parse_query("found :- d/lib{[a.b]}")
        translated = translate(system, query)
        outcome = lazy_evaluate(translated.system, translated.query)
        assert outcome.stable
        assert len(strip_forest(outcome.answer)) == 1


class TestDatalogComposesWithAnalyses:
    def test_compiled_program_judged_terminating(self):
        program = transitive_closure_program(chain_edges(4))
        system = compile_program(program)
        report = analyze_termination(system)
        assert report.terminates
        # The saturated system carries exactly the engine's fixpoint.
        reference = evaluate(program)
        query = parse_query(
            "p{c0{$x}, c1{$y}} :- idb/r{t_tc{c0{$x}, c1{$y}}}")
        pairs = evaluate_snapshot(query, report.system.environment())
        assert len(pairs) == len(reference.relation("tc"))

    def test_compiled_program_not_acyclic_but_decidable(self):
        system = compile_program(transitive_closure_program([(1, 2), (2, 3)]))
        assert not is_acyclic(system)           # recursion through idb
        assert analyze_termination(system).terminates

    def test_q_finiteness_over_compiled_program(self):
        system = compile_program(transitive_closure_program([(1, 2)]))
        query = parse_query("out{*T} :- idb/r{*T}")
        assert is_q_finite(system, query).finite


class TestLazyOnLargePortals:
    def test_lazy_eager_fire_once_triangle(self):
        query = parse_query(
            "res{title{$t}, rating{$r}} :- "
            "portal/directory{cd{title{$t}, rating{$r}}}")
        base = portal_system(15, materialized_fraction=0.5, n_irrelevant=6,
                             seed=13)
        lazy = lazy_evaluate(base.copy(), query)
        eager_answer, eager_calls, _ = eager_evaluate(base.copy(), query)
        assert lazy.answer.equivalent_to(eager_answer)
        assert lazy.invocations <= eager_calls

        # Fire-once coincides here: the portal is acyclic.
        once = base.copy()
        assert is_acyclic(once)
        fire_once(once)
        once_answer = evaluate_snapshot(query, once.environment())
        assert once_answer.equivalent_to(eager_answer)

    def test_stability_after_materialisation(self):
        query = parse_query(
            "res{title{$t}, rating{$r}} :- "
            "portal/directory{cd{title{$t}, rating{$r}}}")
        system = portal_system(6, seed=21)
        materialize(system)
        assert is_q_stable(system, query) is Verdict.YES


class TestAcyclicPropertyPipeline:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_acyclic_full_pipeline(self, seed):
        system = random_acyclic_system(4, seed=seed)
        top_doc = "doc3"
        query = parse_query(f"got{{$x}} :- {top_doc}/@r{{item{{w3{{$x}}}}}}")

        # termination analysis, graph representation, and direct
        # materialisation must all agree.
        report = analyze_termination(system)
        assert report.terminates
        representation = build_graph_representation(system)
        assert representation.is_finite()

        over_graphs = snapshot_over_graphs(representation, query)
        reference = system.copy()
        materialize(reference)
        direct = evaluate_snapshot(query, reference.environment())
        assert over_graphs.equivalent_to(direct)

        lazy = lazy_evaluate(system.copy(), query)
        assert lazy.answer.equivalent_to(direct)


class TestDivergentPipeline:
    def test_divergent_system_full_pipeline(self, example_2_1):
        # decision → representation → full query result → stability, all
        # over an infinite [I].
        assert analyze_termination(example_2_1).diverges
        representation = build_graph_representation(example_2_1)
        deep = parse_query("deep :- d/a{a{a{a{a}}}}")
        result = snapshot_over_graphs(representation, deep)
        assert len(result) == 1
        assert is_q_stable(example_2_1, deep) is Verdict.NO
        shallow = parse_query("shallow :- d/a")
        assert is_q_stable(example_2_1, shallow) is Verdict.YES
