"""Tests for reduction, canonical keys and least upper bounds (Prop. 2.1)."""

import pytest

from paxml.tree import (
    canonical_key,
    is_equivalent,
    is_reduced,
    is_subsumed,
    lub,
    parse_tree,
    reduce_forest,
    reduce_in_place,
    reduced_copy,
    to_canonical,
)
from paxml.tree.reduction import antichain_insert, truncated_copy, truncated_key


class TestReduction:
    def test_paper_example(self):
        # Section 2.1: a{b{c,c}, b{c,d,d}} reduces to a{b{c,d}}.
        tree = parse_tree("a{b{c, c}, b{c, d, d}}")
        assert not is_reduced(tree)
        reduced = reduced_copy(tree)
        assert to_canonical(reduced) == "a{b{c, d}}"
        assert is_reduced(reduced)

    def test_reduction_preserves_equivalence(self):
        tree = parse_tree("a{b{x, x{y}}, b{x{y}}, c, c{d}, c{d}}")
        assert is_equivalent(tree, reduced_copy(tree))

    def test_already_reduced_unchanged(self):
        tree = parse_tree("a{b{c}, b{d}}")
        assert not reduce_in_place(tree)
        assert tree.size() == 5

    def test_in_place_keeps_surviving_node_identity(self):
        tree = parse_tree("a{b{c}, b{c, d}, e}")
        survivor = tree.children[1]  # b{c,d} dominates b{c}
        other = tree.children[2]
        reduce_in_place(tree)
        assert tree.children[0] is survivor
        assert tree.children[1] is other

    def test_nested_reduction_cascades(self):
        # Reducing children can make parents comparable.
        tree = parse_tree("a{p{b, b}, p{b}}")
        assert to_canonical(reduced_copy(tree)) == "a{p{b}}"

    def test_function_nodes_participate(self):
        tree = parse_tree("a{!f{x}, !f{x}, !f{x, y}}")
        assert to_canonical(reduced_copy(tree)) == "a{!f{x, y}}"

    def test_idempotent(self):
        tree = parse_tree("a{b{c, c}, b{c, d, d}, b}")
        once = reduced_copy(tree)
        twice = reduced_copy(once)
        assert to_canonical(once) == to_canonical(twice)

    def test_values_dedupe(self):
        tree = parse_tree("a{1, 1, 2}")
        assert to_canonical(reduced_copy(tree)) == "a{1, 2}"


class TestAntichainInsert:
    def test_dominated_candidate_dropped(self):
        keep = [parse_tree("a{b, c}")]
        assert not antichain_insert(keep, parse_tree("a{b}"))
        assert len(keep) == 1

    def test_dominating_candidate_evicts(self):
        keep = [parse_tree("a{b}"), parse_tree("a{c}"), parse_tree("x")]
        assert antichain_insert(keep, parse_tree("a{b, c}"))
        assert len(keep) == 2  # both a{…} evicted, x kept

    def test_equivalent_candidate_dropped(self):
        keep = [parse_tree("a{b, c}")]
        assert not antichain_insert(keep, parse_tree("a{c, b}"))


class TestCanonicalKey:
    def test_equivalent_trees_same_key(self):
        t1 = parse_tree("a{b{c, c}, d}")
        t2 = parse_tree("a{d, b{c}}")
        assert canonical_key(t1) == canonical_key(t2)

    def test_distinct_trees_distinct_keys(self):
        assert canonical_key(parse_tree("a{b}")) != canonical_key(parse_tree("a{b, c}"))

    def test_key_distinguishes_marking_domains(self):
        assert canonical_key(parse_tree("a{b}")) != canonical_key(parse_tree("a{!b}"))
        assert canonical_key(parse_tree('a{"b"}')) != canonical_key(parse_tree("a{b}"))

    def test_key_is_hashable(self):
        {canonical_key(parse_tree("a{b{c}}"))}


class TestTruncation:
    def test_truncated_copy_depth(self):
        tree = parse_tree("a{b{c{d{e}}}}")
        assert truncated_copy(tree, 2).depth() == 2
        assert truncated_copy(tree, 0).size() == 1

    def test_truncation_is_subsumed(self):
        tree = parse_tree("a{b{c}, d{e{f}}}")
        assert is_subsumed(truncated_copy(tree, 1), tree)

    def test_truncated_key_merges_deep_differences(self):
        t1 = parse_tree("a{b{c{x}}}")
        t2 = parse_tree("a{b{c{y}}}")
        assert truncated_key(t1, 2) == truncated_key(t2, 2)
        assert truncated_key(t1, 3) != truncated_key(t2, 3)

    def test_truncation_re_reduces(self):
        # Distinct siblings can become equivalent after truncation.
        tree = parse_tree("a{b{x}, b{y}}")
        assert truncated_key(tree, 1) == truncated_key(parse_tree("a{b}"), 1)


class TestLub:
    def test_paper_style_union(self):
        merged = lub(parse_tree("a{b}"), parse_tree("a{c}"))
        assert to_canonical(merged) == "a{b, c}"

    def test_lub_is_least(self):
        t1, t2 = parse_tree("a{b{x}}"), parse_tree("a{b{y}, c}")
        merged = lub(t1, t2)
        assert is_subsumed(t1, merged) and is_subsumed(t2, merged)
        # Any common upper bound subsumes the lub.
        upper = parse_tree("a{b{x, y, z}, c{w}, d}")
        assert is_subsumed(merged, upper)

    def test_lub_reduces_overlap(self):
        merged = lub(parse_tree("a{b, c}"), parse_tree("a{c, d}"))
        assert to_canonical(merged) == "a{b, c, d}"

    def test_distinct_roots_incomparable(self):
        with pytest.raises(ValueError):
            lub(parse_tree("a"), parse_tree("b"))

    def test_idempotent(self):
        tree = parse_tree("a{b{c}}")
        assert is_equivalent(lub(tree, tree), tree)


class TestReduceForest:
    def test_drops_subsumed_trees(self):
        forest = [parse_tree("a{b}"), parse_tree("a{b, c}"), parse_tree("x")]
        reduced = reduce_forest(forest)
        assert sorted(to_canonical(t) for t in reduced) == ["a{b, c}", "x"]

    def test_each_member_reduced(self):
        reduced = reduce_forest([parse_tree("a{b, b}")])
        assert to_canonical(reduced[0]) == "a{b}"

    def test_empty(self):
        assert reduce_forest([]) == []
