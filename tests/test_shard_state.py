"""Per-process shard state: stamp-clock striding and worker bootstrap.

Two invariants carry the whole cross-process consistency story:

* stamps minted in shard *i* of *N* always lie in the residue class
  ``i (mod N)``, through both :func:`configure_stamp_clock` and every
  later :func:`advance_stamp_clock`, so nodes minted concurrently in
  different workers can never collide when their wire forms meet in a
  replica;
* a worker's perf flags come from the coordinator's **explicit**
  snapshot, never from ambient process globals — under ``fork`` the
  child would otherwise inherit a mid-run copy of the parent's
  switchboard, and under ``spawn`` it would silently fall back to
  compiled-in defaults.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys

import pytest

from paxml import perf
from paxml.obs import bus as obs_bus
from paxml.shard.bootstrap import bootstrap_worker
from paxml.tree.node import (
    advance_stamp_clock,
    configure_stamp_clock,
    next_stamp,
    stamp_clock_config,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


@pytest.fixture(autouse=True)
def _restore_globals():
    saved = perf.flags.snapshot()
    yield
    perf.flags.apply(saved)
    perf.stats.reset()
    obs_bus.reset()
    configure_stamp_clock(offset=0, stride=1)


class TestStampClock:
    def test_configured_residue_class_holds(self):
        configure_stamp_clock(offset=2, stride=5)
        stamps = [next_stamp() for _ in range(50)]
        assert all(stamp % 5 == 2 for stamp in stamps)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 50

    def test_configure_starts_past_current_counter(self):
        before = next_stamp()
        start = configure_stamp_clock(offset=1, stride=4)
        assert start > before
        assert start % 4 == 1

    def test_advance_preserves_residue_class(self):
        configure_stamp_clock(offset=3, stride=4)
        advance_stamp_clock(1_000_003)
        stamp = next_stamp()
        assert stamp > 1_000_003
        assert stamp % 4 == 3

    def test_advance_below_current_is_a_noop_forward(self):
        configure_stamp_clock(offset=0, stride=2)
        first = next_stamp()
        advance_stamp_clock(first - 100)
        second = next_stamp()
        assert second > first
        assert second % 2 == 0

    def test_config_is_queryable(self):
        configure_stamp_clock(offset=1, stride=3)
        assert stamp_clock_config() == (1, 3)

    def test_distinct_shards_never_collide(self):
        minted = []
        for shard in range(3):
            configure_stamp_clock(offset=shard, stride=3)
            minted.append({next_stamp() for _ in range(100)})
        assert not (minted[0] & minted[1])
        assert not (minted[0] & minted[2])
        assert not (minted[1] & minted[2])

    @pytest.mark.parametrize("offset,stride", [(-1, 2), (2, 2), (0, 0)])
    def test_bad_configuration_rejected(self, offset, stride):
        with pytest.raises(ValueError):
            configure_stamp_clock(offset=offset, stride=stride)


class TestFlagsSnapshotApply:
    def test_roundtrip(self):
        snapshot = perf.flags.snapshot()
        perf.flags.query_planner = not snapshot["query_planner"]
        perf.flags.apply(snapshot)
        assert perf.flags.snapshot() == snapshot

    def test_unknown_keys_ignored(self):
        perf.flags.apply({"not_a_real_flag": True})
        assert not hasattr(perf.flags, "not_a_real_flag")

    def test_env_disabled_flags_stay_off(self, monkeypatch):
        monkeypatch.setattr(perf, "_ENV_DISABLED",
                            frozenset({"query_planner"}))
        perf.flags.apply({"query_planner": True})
        assert perf.flags.query_planner is False


class TestBootstrapInProcess:
    def test_resets_stats_and_bus_and_applies_flags(self):
        perf.stats.subsumption_hits += 41
        obs_bus.enable()
        effective = bootstrap_worker(1, 2,
                                     {"query_planner": False,
                                      "closure_compile": False})
        assert perf.stats.subsumption_hits == 0
        assert not obs_bus.ACTIVE
        assert effective["query_planner"] is False
        assert effective["closure_compile"] is False
        assert stamp_clock_config() == (1, 2)

    def test_obs_active_reenables_bus(self):
        bootstrap_worker(0, 1, None, obs_active=True)
        assert obs_bus.ACTIVE


# ----------------------------------------------------------------------
# Cross-process: the worker must see the explicit config, not whatever
# the parent process (fork) or the module defaults (spawn) would give.
# ----------------------------------------------------------------------

def _fork_child(conn, flags):
    try:
        effective = bootstrap_worker(1, 4, flags)
        stamp = next_stamp()
        conn.send({"flags": effective, "stamp": stamp,
                   "subsumption_hits": perf.stats.subsumption_hits,
                   "bus_active": obs_bus.ACTIVE})
    finally:
        conn.close()


def test_forked_worker_uses_explicit_config_not_parent_globals():
    if not hasattr(os, "fork"):
        pytest.skip("no fork on this platform")
    # Pollute the parent: flags flipped, stats nonzero, bus enabled —
    # everything a forked child would wrongly inherit.
    perf.flags.query_planner = False
    perf.flags.subsumption_cache = False
    perf.stats.subsumption_hits = 999
    obs_bus.enable()
    explicit = dict(perf.flags.snapshot(), query_planner=True,
                    subsumption_cache=True, closure_compile=False)

    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_fork_child, args=(child_conn, explicit))
    process.start()
    child_conn.close()
    report = parent_conn.recv()
    process.join(timeout=30)

    assert report["flags"]["query_planner"] is True
    assert report["flags"]["subsumption_cache"] is True
    assert report["flags"]["closure_compile"] is False
    assert report["subsumption_hits"] == 0
    assert report["bus_active"] is False
    assert report["stamp"] % 4 == 1


_SPAWN_SCRIPT = """
import json, sys
from paxml import perf
from paxml.shard.bootstrap import bootstrap_worker
from paxml.tree.node import next_stamp

flags = json.loads(sys.argv[1])
effective = bootstrap_worker(3, 4, flags)
print(json.dumps({"flags": effective, "stamp": next_stamp()}))
"""


def test_spawned_worker_applies_explicit_config_over_defaults():
    # A fresh interpreter (what the spawn start method gives a worker)
    # boots with compiled-in defaults; the explicit snapshot must win.
    explicit = dict(perf.flags.snapshot(), query_planner=False,
                    child_index=False)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _SPAWN_SCRIPT, json.dumps(explicit)],
        capture_output=True, text=True, env=env, timeout=60, check=True)
    report = json.loads(out.stdout)
    assert report["flags"]["query_planner"] is False
    assert report["flags"]["child_index"] is False
    assert report["stamp"] % 4 == 3
