"""Property-based tests for query semantics — Proposition 3.1(1) at scale.

Monotonicity is the load-bearing property of the whole paper (confluence,
well-defined semantics, lazy evaluation all rest on it), so it gets the
heaviest random testing: grow a random document by random grafts and check
the snapshot result only ever grows.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from paxml.query import evaluate_snapshot, parse_query
from paxml.tree import Node, is_subsumed, label, parse_tree, val

from .conftest import tree_strategy

QUERIES = [
    "hit{$x} :- d/a{b{$x}}",
    "hit{@l} :- d/a{@l}",
    "pair{$x, $y} :- d/a{b{$x}, b{$y}}, $x != $y",
    "deep{$x} :- d/a{b{c{$x}}}",
    "z{*T} :- d/a{*T}",
    "w{$x} :- d/a{[b.(c|b)*]{$x}}",
    "two{$x} :- d/a{b{$x}}, d/a{c{$x}}",
]


def _graft_randomly(tree: Node, seed: int) -> Node:
    """Return a copy of ``tree`` with extra random children grafted in."""
    rng = random.Random(seed)
    grown = tree.copy()
    targets = [n for n in grown.iter_nodes() if not n.is_value]
    if not targets:
        return grown  # a lone value leaf cannot grow (values stay leaves)
    for _ in range(rng.randrange(1, 4)):
        target = rng.choice(targets)
        new_child = rng.choice([
            label(rng.choice("abc"), val(rng.randrange(3))),
            label(rng.choice("abc")),
            val(rng.randrange(3)),
        ])
        target.add_child(new_child)
        if not new_child.is_value:
            targets.append(new_child)
    return grown


@given(tree_strategy(), st.integers(0, 10_000), st.sampled_from(QUERIES))
@settings(max_examples=120)
def test_snapshot_monotone_under_growth(tree: Node, seed: int, query_text: str):
    query = parse_query(query_text)
    grown = _graft_randomly(tree, seed)
    assert is_subsumed(tree, grown)
    before = evaluate_snapshot(query, {"d": tree})
    after = evaluate_snapshot(query, {"d": grown})
    assert before.subsumed_by(after)


@given(tree_strategy(), st.sampled_from(QUERIES))
@settings(max_examples=60)
def test_snapshot_invariant_under_equivalence(tree: Node, query_text: str):
    """q(I) only depends on the equivalence class of I."""
    from paxml.tree import reduced_copy

    query = parse_query(query_text)
    direct = evaluate_snapshot(query, {"d": tree})
    reduced = evaluate_snapshot(query, {"d": reduced_copy(tree)})
    assert direct.equivalent_to(reduced)


@given(tree_strategy())
@settings(max_examples=60)
def test_snapshot_results_are_reduced(tree: Node):
    query = parse_query("out{*T} :- d/a{*T}")
    result = evaluate_snapshot(query, {"d": tree})
    for member in result:
        from paxml.tree import is_reduced

        assert is_reduced(member)


def test_tree_equality_test_would_break_monotonicity():
    """Proposition 3.1(2), as a concrete counterexample.

    If tree-variable equality were allowed, 'd has two equal b-subtrees'
    would flip from false to true and back as documents grow — the library
    forbids the construct, and this test documents why with the paper's
    argument run by hand.
    """
    small = parse_tree("a{b{x}, b{y}}")
    large = parse_tree("a{b{x, y}, b{y, x}}")
    assert is_subsumed(small, large)

    def equal_subtree_pairs(tree):
        from paxml.tree import canonical_key

        keys = [canonical_key(c) for c in tree.children]
        return sum(1 for i, k in enumerate(keys) for j in range(i + 1, len(keys))
                   if keys[j] == k)

    # The hypothetical query's answer would shrink… no wait — it *grows*
    # here; the non-monotone direction is *inequality* of trees:
    def unequal_subtree_pairs(tree):
        from paxml.tree import canonical_key

        keys = [canonical_key(c) for c in tree.children]
        return sum(1 for i, k in enumerate(keys) for j in range(i + 1, len(keys))
                   if keys[j] != k)

    assert unequal_subtree_pairs(small) == 1
    assert unequal_subtree_pairs(large) == 0  # shrank although I grew
