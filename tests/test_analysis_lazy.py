"""Tests for lazy query evaluation (Section 4, Theorem 4.1)."""

import pytest

from paxml.analysis import (
    Verdict,
    eager_evaluate,
    full_query_result,
    is_possible_answer,
    is_q_stable,
    is_unneeded,
    is_weakly_stable,
    lazy_evaluate,
    weakly_relevant_calls,
)
from paxml.query import parse_query
from paxml.system import AXMLSystem
from paxml.tree import Forest, parse_tree
from paxml.workloads import portal_system


RATING_QUERY = parse_query(
    "res{title{$t}, rating{$r}} :- portal/directory{cd{title{$t}, rating{$r}}}"
)


class TestWeakRelevance:
    def test_only_query_relevant_calls_selected(self, jazz_portal):
        report = weakly_relevant_calls(jazz_portal, RATING_QUERY)
        names = sorted(node.marking.name for _d, node in report.relevant)
        assert names == ["GetRating"]

    def test_irrelevant_branch_calls_skipped(self, jazz_portal):
        query = parse_query("out{$s} :- portal/directory{cd{singer{$s}}}")
        report = weakly_relevant_calls(jazz_portal, query)
        # singer data is fully materialised, but appends at cd level could
        # still create *new* cd matches, so GetRating's parent (a cd) stays
        # relevant; the promos branch never does.
        names = {node.marking.name for _d, node in report.relevant}
        assert "FreeMusicDB" not in names

    def test_promos_query_flips_relevance(self, jazz_portal):
        query = parse_query("out{$t} :- portal/directory{promos{cd{title{$t}}}}")
        report = weakly_relevant_calls(jazz_portal, query)
        names = {node.marking.name for _d, node in report.relevant}
        assert names == {"FreeMusicDB"}

    def test_service_bodies_extend_goals(self):
        # q reads doc d; the call in d is to f which reads doc e; the call
        # inside e must become relevant through f's body.
        system = AXMLSystem.build(
            documents={"d": "a{!f}", "e": "b{!g}", "base": "src{v{1}}"},
            services={
                "f": "got{$x} :- e/b{fetched{$x}}",
                "g": "fetched{$x} :- base/src{v{$x}}",
            },
        )
        query = parse_query("out{$x} :- d/a{got{$x}}")
        report = weakly_relevant_calls(system, query)
        names = {node.marking.name for _d, node in report.relevant}
        assert names == {"f", "g"}

    def test_black_box_mode_is_coarser(self):
        system = AXMLSystem.build(
            documents={"d": "a{!f}", "e": "b{!g}", "base": "src{v{1}}"},
            services={
                "f": "got{$x} :- e/b{fetched{$x}}",
                "g": "other{$x} :- base/src{v{$x}}",  # g can never help f
            },
        )
        query = parse_query("out{$x} :- d/a{got{$x}}")
        informed = {n.marking.name
                    for _d, n in weakly_relevant_calls(system, query).relevant}
        agnostic = {n.marking.name
                    for _d, n in weakly_relevant_calls(
                        system, query, use_service_bodies=False).relevant}
        assert informed <= agnostic
        assert "g" in agnostic  # black-box mode cannot rule g out

    def test_params_and_context_calls_relevant(self):
        system = AXMLSystem.build(
            documents={"d": "a{!outer{!inner}}", "base": "src{v{1}}"},
            services={
                "outer": "got{$x} :- input/input{arg{$x}}",
                "inner": "arg{$x} :- base/src{v{$x}}",
            },
        )
        query = parse_query("out{$x} :- d/a{got{$x}}")
        names = {n.marking.name
                 for _d, n in weakly_relevant_calls(system, query).relevant}
        assert names == {"outer", "inner"}

    def test_weak_stability(self, jazz_portal):
        query = parse_query("out :- portal/nothing")
        assert is_weakly_stable(jazz_portal, query)
        assert not is_weakly_stable(jazz_portal, RATING_QUERY)


class TestLazyEvaluator:
    def test_lazy_matches_eager_answer(self, jazz_portal):
        lazy_system = jazz_portal.copy()
        eager_system = jazz_portal.copy()
        lazy = lazy_evaluate(lazy_system, RATING_QUERY)
        eager_answer, eager_calls, _term = eager_evaluate(eager_system, RATING_QUERY)
        assert lazy.stable
        assert lazy.answer.equivalent_to(eager_answer)
        assert lazy.invocations <= eager_calls

    def test_lazy_saves_calls_on_portal_workload(self):
        system = portal_system(n_cds=20, materialized_fraction=0.5,
                               n_irrelevant=10, seed=3)
        lazy_sys = system.copy()
        eager_sys = system.copy()
        query = RATING_QUERY
        lazy = lazy_evaluate(lazy_sys, query)
        answer, eager_calls, _ = eager_evaluate(eager_sys, query)
        assert lazy.answer.equivalent_to(answer)
        assert lazy.invocations < eager_calls  # the promos never fire

    def test_lazy_on_stable_system_invokes_nothing(self):
        system = AXMLSystem.build(
            documents={"d": 'a{b{"1"}, c{!h}}', "e": "x{y{2}}"},
            services={"h": "z{$v} :- e/x{y{$v}}"},
        )
        query = parse_query("out{$v} :- d/a{b{$v}}")
        result = lazy_evaluate(system, query)
        assert result.invocations == 0
        assert result.stable

    def test_lazy_follows_recursive_growth(self, example_3_2):
        query = parse_query("p{c0{$x}, c1{$y}} :- d1/r{t{c0{$x}, c1{$y}}}")
        result = lazy_evaluate(example_3_2, query)
        assert result.stable
        texts = {t.size() for t in result.answer}
        assert len(result.answer) == 6  # full transitive closure of a 4-chain


class TestExactNotions:
    def test_full_query_result(self, jazz_portal):
        forest, exact = full_query_result(jazz_portal, RATING_QUERY)
        assert exact
        assert len(forest) == 2  # both cds end up rated

    def test_possible_answer_materialised_vs_intensional(self, jazz_portal):
        # The paper's motivating example: answering with the call itself is
        # as good as answering with "****".
        query = parse_query(
            'res{$r} :- portal/directory{cd{title{"Body and Soul"}, rating{$r}}}'
        )
        materialised = Forest([parse_tree('res{"****"}')])
        intensional = Forest([parse_tree('res2{!GetRating{"Body and Soul"}}')])
        assert is_possible_answer(jazz_portal, query, materialised) is Verdict.YES
        # Different root labels make the intensional variant inequivalent
        # as a *document*, even though it carries the same rating.
        assert is_possible_answer(jazz_portal, query, intensional) is Verdict.NO

    def test_intensional_possible_answer(self, jazz_portal):
        query = parse_query(
            'res{$r} :- portal/directory{cd{title{"Body and Soul"}, rating{$r}}}'
        )
        # res{GetRating{…}} expands to res{GetRating{…}, "****"} — hmm, the
        # call's answer lands *next to* it, so the expanded candidate is
        # res{call, "****"} while [q](I) is res{"****"}: not equivalent.
        # A faithful intensional answer therefore repeats the head shape:
        candidate = Forest([parse_tree('res{!GetRating{"Body and Soul"}}')])
        verdict = is_possible_answer(jazz_portal, query, candidate)
        assert verdict is Verdict.NO

    def test_unneeded_when_other_source_provides_data(self):
        # Two calls derive the same fact; either one alone is unneeded.
        system = AXMLSystem.build(
            documents={"d": "a{!f1, !f2}", "e": "src{v{1}}"},
            services={
                "f1": "got{$x} :- e/src{v{$x}}",
                "f2": "got{$x} :- e/src{v{$x}}",
            },
        )
        query = parse_query("out{$x} :- d/a{got{$x}}")
        calls = {node.marking.name: node for _d, node in system.call_sites()}
        assert is_unneeded(system, query, [calls["f1"]]) is Verdict.YES
        assert is_unneeded(system, query, [calls["f2"]]) is Verdict.YES
        # …but not both together: being unneeded is not closed under union
        # (Section 4 points this out explicitly).
        assert is_unneeded(system, query,
                           list(calls.values())) is Verdict.NO

    def test_q_stable_yes_and_no(self):
        system = AXMLSystem.build(
            documents={"d": 'a{b{"1"}, c{!h}}', "e": "x{y{2}}"},
            services={"h": "z{$v} :- e/x{y{$v}}"},
        )
        assert is_q_stable(system,
                           parse_query("out{$v} :- d/a{b{$v}}")) is Verdict.YES
        assert is_q_stable(system,
                           parse_query("out{@l} :- d/a{c{@l}}")) is Verdict.NO

    def test_weak_stability_implies_stability(self, jazz_portal):
        # Sampled check of the paper's soundness claim.
        queries = [
            "out :- portal/nothing",
            "out{$v} :- ratingsdb/db{entry{stars{$v}}}",
        ]
        for text in queries:
            query = parse_query(text)
            if is_weakly_stable(jazz_portal, query):
                assert is_q_stable(jazz_portal, query) is Verdict.YES

    def test_stability_on_divergent_simple_system(self, example_2_1):
        # q reads only the root label; even the divergent f is unneeded.
        query = parse_query("out :- d/a")
        assert is_q_stable(example_2_1, query) is Verdict.YES

    def test_instability_on_divergent_simple_system(self, example_2_1):
        # q needs depth-3 nesting, which only materialises by invoking f.
        query = parse_query("out :- d/a{a{a{a}}}")
        assert is_q_stable(example_2_1, query) is Verdict.NO
