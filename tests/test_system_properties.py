"""System-level property tests: confluence and lazy/eager agreement on
randomly generated workloads."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from paxml import RewritingEngine, eager_evaluate, lazy_evaluate, parse_query
from paxml.system import fire_once, materialize
from paxml.workloads import portal_system, random_acyclic_system


@given(st.integers(0, 1000), st.sampled_from(["round_robin", "lifo", "random"]))
@settings(max_examples=30, deadline=None)
def test_confluence_on_random_acyclic_systems(seed, scheduler):
    """Theorem 2.1 over the random acyclic family: every schedule reaches
    the same fixpoint as the reference round-robin run."""
    reference = random_acyclic_system(3, seed=seed)
    materialize(reference)
    subject = random_acyclic_system(3, seed=seed)
    result = RewritingEngine(subject, scheduler=scheduler, seed=seed).run()
    assert result.terminated
    assert subject.equivalent_to(reference)


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_fire_once_equals_positive_on_acyclic(seed):
    """The Section 4 coincidence claim over the random acyclic family."""
    reference = random_acyclic_system(3, seed=seed)
    materialize(reference)
    subject = random_acyclic_system(3, seed=seed)
    outcome = fire_once(subject)
    assert outcome.complete
    assert subject.equivalent_to(reference)


QUERIES = [
    "res{title{$t}, rating{$r}} :- portal/directory{cd{title{$t}, rating{$r}}}",
    "res{$t} :- portal/directory{cd{title{$t}}}",
    "res{$s} :- portal/directory{cd{singer{$s}, rating{$r}}}",
    "res{$t} :- portal/directory{promos{cd{title{$t}}}}",
    "res{$t, $s} :- portal/directory{cd{title{$t}, rating{$s}}}, "
    'ratingsdb/db{entry{song{$t}, stars{$s}}}',
]


@given(st.integers(0, 500), st.sampled_from(QUERIES),
       st.floats(0.0, 1.0), st.integers(0, 6))
@settings(max_examples=25, deadline=None)
def test_lazy_agrees_with_eager_on_random_portals(seed, query_text,
                                                  fraction, irrelevant):
    """Lazy evaluation must never lose answers, whatever the query shape
    and however the relevant/irrelevant call mix is drawn."""
    query = parse_query(query_text)
    base = portal_system(8, materialized_fraction=fraction,
                         n_irrelevant=irrelevant, seed=seed)
    lazy = lazy_evaluate(base.copy(), query)
    eager_answer, eager_calls, terminated = eager_evaluate(base.copy(), query)
    assert terminated
    assert lazy.stable
    assert lazy.answer.equivalent_to(eager_answer)
    # No universal call-count inequality: when every call is relevant,
    # lazy's per-round re-confirmation can cost a few extra invocations
    # (savings on irrelevant-heavy workloads are asserted in E8).  It must
    # stay within one confirmation round of eager, though:
    assert lazy.invocations <= eager_calls + base.call_count()
