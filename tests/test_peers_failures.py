"""Failure injection on the P2P wire: loss and duplication.

Monotonicity is what makes AXML's at-least-once world safe: duplicated
answers reduce away (grafting is idempotent up to ≡), and lost messages
are recovered by pull-mode re-polling.  Push mode is genuinely at-most-
once per change, so a lost answer can stall a subscription — also
demonstrated here.
"""

import pytest

from paxml.peers import Mode, Network, Peer
from paxml.tree import to_canonical


def make_peers():
    portal = Peer("portal")
    calls = ", ".join(
        f'cd{{title{{"song-{i}"}}, !GetRating{{"song-{i}"}}}}' for i in range(8)
    )
    portal.add_document("directory", f"directory{{{calls}}}")
    backend = Peer("backend")
    entries = ", ".join(
        f'entry{{song{{"song-{i}"}}, stars{{"{1 + i % 5}"}}}}' for i in range(8)
    )
    backend.add_document("ratingsdb", f"db{{{entries}}}")
    backend.offer_service((
        "GetRating",
        'rating{$s} :- input/input{$t}, ratingsdb/db{entry{song{$t}, stars{$s}}}',
    ))
    return portal, backend


def reference_state() -> str:
    portal, backend = make_peers()
    Network([portal, backend], mode=Mode.PULL, seed=0).run()
    return to_canonical(portal.documents["directory"].root)


class TestDuplication:
    @pytest.mark.parametrize("seed", range(4))
    def test_duplicates_are_harmless(self, seed):
        portal, backend = make_peers()
        network = Network([portal, backend], mode=Mode.PULL, seed=seed,
                          duplicate_rate=0.5)
        stats = network.run()
        assert stats.messages_duplicated > 0
        assert to_canonical(portal.documents["directory"].root) == \
            reference_state()

    def test_duplicates_in_push_mode(self):
        portal, backend = make_peers()
        network = Network([portal, backend], mode=Mode.PUSH, seed=1,
                          duplicate_rate=0.6)
        network.run()
        assert to_canonical(portal.documents["directory"].root) == \
            reference_state()


class TestLoss:
    @pytest.mark.parametrize("seed", range(4))
    def test_pull_mode_recovers_from_loss(self, seed):
        portal, backend = make_peers()
        network = Network([portal, backend], mode=Mode.PULL, seed=seed,
                          drop_rate=0.3)
        stats = network.run()
        assert stats.messages_dropped > 0
        assert network.quiescent()
        assert to_canonical(portal.documents["directory"].root) == \
            reference_state()

    def test_loss_plus_duplication(self):
        portal, backend = make_peers()
        network = Network([portal, backend], mode=Mode.PULL, seed=9,
                          drop_rate=0.25, duplicate_rate=0.25)
        network.run()
        assert to_canonical(portal.documents["directory"].root) == \
            reference_state()

    def test_push_mode_can_stall_on_loss(self):
        # Not a flaky accident: with a very lossy wire, *some* seed loses a
        # subscription answer for good (the owner's data never changes
        # again, so it is never re-sent).  Find one such seed and pin it.
        stalled = None
        for seed in range(40):
            portal, backend = make_peers()
            network = Network([portal, backend], mode=Mode.PUSH, seed=seed,
                              drop_rate=0.5)
            network.run(max_rounds=50)
            if to_canonical(portal.documents["directory"].root) != \
                    reference_state():
                stalled = seed
                break
        assert stalled is not None, (
            "expected at least one stalled push run under 50% loss"
        )

    def test_rate_validation(self):
        portal, backend = make_peers()
        with pytest.raises(ValueError):
            Network([portal, backend], drop_rate=1.0)
        with pytest.raises(ValueError):
            Network([portal, backend], duplicate_rate=-0.1)
